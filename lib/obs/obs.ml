(* Observability layer: span timers, counters, histograms, event traces,
   telemetry records.

   v2 is domain-safe. State lives in per-domain [store]s: slot 0 is the
   root store owned by the main domain; Par workers enter a worker store
   (one per parallel chunk) via [worker_scope], and [capture] merges all
   stores deterministically (root first, then worker slots ascending).

   The contract that matters for performance is unchanged: when
   [enabled_flag] is false, every entry point is a single load-and-branch
   with no allocation, so instrumented code paths cost nothing in
   benchmark runs. *)

(* ------------------------------------------------------------------ *)
(* JSON *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Finite floats must survive a print/parse round trip exactly:
     integral values keep a ".0" so they stay floats, everything else
     gets 17 significant digits (enough for any IEEE double). *)
  let float_repr f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let to_string ?(indent = false) t =
    let buf = Buffer.create 256 in
    let pad depth =
      if indent then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * depth) ' ')
      end
    in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_repr f)
      | Str s -> escape buf s
      | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        if items <> [] then pad depth;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) v)
          fields;
        if fields <> [] then pad depth;
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    (* Append the UTF-8 encoding of a Unicode scalar value. *)
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let hex_digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let read_hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v =
        (hex_digit s.[!pos] lsl 12)
        lor (hex_digit s.[!pos + 1] lsl 8)
        lor (hex_digit s.[!pos + 2] lsl 4)
        lor hex_digit s.[!pos + 3]
      in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else begin
          let c = s.[!pos] in
          advance ();
          if c = '"' then Buffer.contents buf
          else if c = '\\' then begin
            (if !pos >= n then fail "unterminated escape");
            let e = s.[!pos] in
            advance ();
            (match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               (* Decode to UTF-8 bytes; surrogate pairs combine to one
                  astral code point, lone surrogates become U+FFFD. *)
               let c1 = read_hex4 () in
               if c1 >= 0xD800 && c1 <= 0xDBFF then begin
                 if
                   !pos + 6 <= n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                 then begin
                   let save = !pos in
                   pos := !pos + 2;
                   let c2 = read_hex4 () in
                   if c2 >= 0xDC00 && c2 <= 0xDFFF then
                     add_utf8 buf
                       (0x10000
                       + ((c1 - 0xD800) lsl 10)
                       + (c2 - 0xDC00))
                   else begin
                     (* not a low surrogate: re-parse it on its own *)
                     pos := save;
                     add_utf8 buf 0xFFFD
                   end
                 end
                 else add_utf8 buf 0xFFFD
               end
               else if c1 >= 0xDC00 && c1 <= 0xDFFF then add_utf8 buf 0xFFFD
               else add_utf8 buf c1
             | _ -> fail "bad escape");
            go ()
          end
          else begin
            Buffer.add_char buf c;
            go ()
          end
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items := parse_value () :: !items;
              go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields := field () :: !fields;
              go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
      | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | _ -> fail (Printf.sprintf "unexpected character %C" c))
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Histograms *)

module Hist = struct
  (* Log-bucketed: quarter-octave buckets (4 per power of two, ~19%
     wide), indexed with [frexp] so recording costs no transcendental
     call. Bucket 0 is the underflow sink (v <= 0 or < 2^min_exp), the
     last bucket is the overflow sink. No float sum is stored — only
     integer bucket counts plus exact min/max — so [merge] is exactly
     associative and capture merges are deterministic. *)

  let buckets_per_octave = 4
  let min_exp = -120 (* lowest representable bucket edge: 2^-120 *)
  let max_exp = 56 (* highest bucket edge: 2^56 seconds ~ forever *)
  let n_buckets = ((max_exp - min_exp) * buckets_per_octave) + 2

  type t = {
    mutable total : int;
    mutable min_v : float;
    mutable max_v : float;
    counts : int array;
  }

  let create () =
    { total = 0; min_v = infinity; max_v = neg_infinity;
      counts = Array.make n_buckets 0 }

  (* Sub-octave thresholds: 2^(-3/4), 2^(-1/2), 2^(-1/4) of the octave
     top, precomputed so bucketing is three compares on the mantissa. *)
  let q1 = 0.59460355750136051
  let q2 = 0.70710678118654757
  let q3 = 0.84089641525371450

  let bucket_of v =
    if not (v > 0.0) then 0 (* <= 0 and NaN *)
    else if v = infinity then n_buckets - 1
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1) *)
      let q = if m < q1 then 0 else if m < q2 then 1 else if m < q3 then 2 else 3 in
      let idx = ((e - 1 - min_exp) * buckets_per_octave) + q + 1 in
      if idx < 1 then 0 else if idx > n_buckets - 2 then n_buckets - 1 else idx
    end

  let add h v =
    if Float.is_finite v then begin
      h.total <- h.total + 1;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let i = bucket_of v in
      h.counts.(i) <- h.counts.(i) + 1
    end

  let count h = h.total
  let min_value h = h.min_v
  let max_value h = h.max_v

  (* Upper edge of bucket [i]: the underflow sink ends at the lowest
     representable edge, interior bucket [i] at 2^(min_exp + i/4), and
     the overflow sink is unbounded. Exposed so exporters (Prometheus
     cumulative [le] buckets, dashboard sparklines) can label buckets
     without knowing the quarter-octave layout. *)
  let bucket_upper_edge i =
    if i <= 0 then 2.0 ** float_of_int min_exp
    else if i >= n_buckets - 1 then infinity
    else 2.0 ** (float_of_int min_exp +. (float_of_int i /. 4.0))

  let bucket_counts h =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then acc := (i, h.counts.(i)) :: !acc
    done;
    !acc

  let copy h =
    { total = h.total; min_v = h.min_v; max_v = h.max_v;
      counts = Array.copy h.counts }

  let merge a b =
    {
      total = a.total + b.total;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      counts = Array.init n_buckets (fun i -> a.counts.(i) + b.counts.(i));
    }

  (* Nearest-rank percentile; the returned value is the geometric
     midpoint of the selected bucket, clamped to the observed [min,max]
     so p0/p100 are exact and single-sample hists report the sample. *)
  let percentile h p =
    if h.total = 0 then Float.nan
    else begin
      let rank =
        let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.total)) in
        if r < 1 then 1 else if r > h.total then h.total else r
      in
      let rec find i acc =
        let acc = acc + h.counts.(i) in
        if acc >= rank then i else find (i + 1) acc
      in
      let i = find 0 0 in
      let v =
        if i = 0 then h.min_v
        else if i = n_buckets - 1 then h.max_v
        else
          2.0 ** (float_of_int min_exp +. ((float_of_int (i - 1) +. 0.5) /. 4.0))
      in
      Float.min h.max_v (Float.max h.min_v v)
    end

  let to_json h =
    if h.total = 0 then Json.Obj [ ("count", Json.Int 0) ]
    else begin
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.counts.(i) > 0 then
          buckets := Json.List [ Json.Int i; Json.Int h.counts.(i) ] :: !buckets
      done;
      Json.Obj
        [
          ("count", Json.Int h.total);
          ("min", Json.Float h.min_v);
          ("max", Json.Float h.max_v);
          ("p50", Json.Float (percentile h 50.0));
          ("p95", Json.Float (percentile h 95.0));
          ("p99", Json.Float (percentile h 99.0));
          ("buckets", Json.List !buckets);
        ]
    end

  let of_json j =
    match Json.member "count" j with
    | Some (Json.Int 0) -> Ok (create ())
    | Some (Json.Int total) when total > 0 -> (
      match
        ( Option.bind (Json.member "min" j) Json.to_float,
          Option.bind (Json.member "max" j) Json.to_float,
          Json.member "buckets" j )
      with
      | Some min_v, Some max_v, Some (Json.List buckets) -> (
        let h = create () in
        h.total <- total;
        h.min_v <- min_v;
        h.max_v <- max_v;
        try
          List.iter
            (function
              | Json.List [ Json.Int i; Json.Int c ]
                when i >= 0 && i < n_buckets && c > 0 ->
                h.counts.(i) <- c
              | _ -> raise Exit)
            buckets;
          Ok h
        with Exit -> Error "hist: malformed bucket entry")
      | _ -> Error "hist: missing min/max/buckets")
    | _ -> Error "hist: missing count"
end

(* ------------------------------------------------------------------ *)
(* Rolling windows *)

module Window = struct
  (* A ring of fixed wall-clock buckets: bucket [e mod n] holds the
     total recorded during epoch e = floor(now / bucket_s). Slots are
     lazily zeroed when revisited after a wrap, so neither recording nor
     querying ever scans more than the ring. Like [Hist], only plain
     sums are kept, so window queries are deterministic given the
     samples and their timestamps ([?now] is injectable for tests). *)

  let wall = Unix.gettimeofday

  type t = {
    bucket_s : float;
    n : int;
    epochs : int array; (* epoch stamped into each slot; -1 = never *)
    vals : float array;
  }

  let create ?(bucket_s = 5.0) ?(slots = 181) () =
    let n = max 2 slots in
    {
      bucket_s = (if bucket_s > 0.0 then bucket_s else 5.0);
      n;
      epochs = Array.make n (-1);
      vals = Array.make n 0.0;
    }

  let epoch_of t now = int_of_float (Float.floor (now /. t.bucket_s))

  let add ?now t v =
    let now = match now with Some x -> x | None -> wall () in
    let e = epoch_of t now in
    if e >= 0 then begin
      let i = e mod t.n in
      if t.epochs.(i) <> e then begin
        t.epochs.(i) <- e;
        t.vals.(i) <- 0.0
      end;
      t.vals.(i) <- t.vals.(i) +. v
    end

  (* Sum over the last ceil(span_s / bucket_s) buckets, current
     (partial) bucket included; clamped to the ring depth. *)
  let sum ?now t ~span_s =
    let now = match now with Some x -> x | None -> wall () in
    let e = epoch_of t now in
    let k =
      let k = int_of_float (Float.ceil (span_s /. t.bucket_s)) in
      if k < 1 then 1 else if k > t.n then t.n else k
    in
    let acc = ref 0.0 in
    for j = 0 to k - 1 do
      let ej = e - j in
      if ej >= 0 then begin
        let i = ej mod t.n in
        if t.epochs.(i) = ej then acc := !acc +. t.vals.(i)
      end
    done;
    !acc

  let rate ?now t ~span_s =
    if span_s <= 0.0 then 0.0 else sum ?now t ~span_s /. span_s

  (* Same ring, one histogram per slot: [merged] folds the live slots
     with [Hist.merge], which is exactly associative, so a windowed
     percentile is as deterministic as a lifetime one. *)
  type hist = {
    h_bucket_s : float;
    h_n : int;
    h_epochs : int array;
    hists : Hist.t array;
  }

  let create_hist ?(bucket_s = 5.0) ?(slots = 181) () =
    let n = max 2 slots in
    {
      h_bucket_s = (if bucket_s > 0.0 then bucket_s else 5.0);
      h_n = n;
      h_epochs = Array.make n (-1);
      hists = Array.init n (fun _ -> Hist.create ());
    }

  let hist_epoch_of w now = int_of_float (Float.floor (now /. w.h_bucket_s))

  let observe ?now w v =
    let now = match now with Some x -> x | None -> wall () in
    let e = hist_epoch_of w now in
    if e >= 0 then begin
      let i = e mod w.h_n in
      if w.h_epochs.(i) <> e then begin
        w.h_epochs.(i) <- e;
        w.hists.(i) <- Hist.create ()
      end;
      Hist.add w.hists.(i) v
    end

  let merged ?now w ~span_s =
    let now = match now with Some x -> x | None -> wall () in
    let e = hist_epoch_of w now in
    let k =
      let k = int_of_float (Float.ceil (span_s /. w.h_bucket_s)) in
      if k < 1 then 1 else if k > w.h_n then w.h_n else k
    in
    let acc = ref (Hist.create ()) in
    for j = k - 1 downto 0 do
      let ej = e - j in
      if ej >= 0 then begin
        let i = ej mod w.h_n in
        if w.h_epochs.(i) = ej then acc := Hist.merge !acc w.hists.(i)
      end
    done;
    !acc
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

module Prom = struct
  (* Prometheus text format 0.0.4 rendering plus a structural validator
     (the bundled fallback for environments without promtool). *)

  type metric =
    | Counter of { name : string; help : string; value : float }
    | Gauge of { name : string; help : string; value : float }
    | Histogram of { name : string; help : string; hist : Hist.t }

  let name_start_ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

  let name_ok c = name_start_ok c || (c >= '0' && c <= '9')

  (* Map an Obs path ("serve/requests") onto the metric-name alphabet
     [a-zA-Z_:][a-zA-Z0-9_:]*. *)
  let metric_name s =
    let b = Buffer.create (String.length s + 1) in
    String.iteri
      (fun i c ->
        let c = if name_ok c then c else '_' in
        if i = 0 && not (name_start_ok c) then Buffer.add_char b '_';
        Buffer.add_char b c)
      s;
    if Buffer.length b = 0 then "_" else Buffer.contents b

  (* Prometheus floats are Go floats: NaN / +Inf / -Inf spelled out. *)
  let value_repr f =
    if Float.is_nan f then "NaN"
    else if f = infinity then "+Inf"
    else if f = neg_infinity then "-Inf"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let escape_help s =
    let b = Buffer.create (String.length s) in
    String.iter
      (function
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let render metrics =
    let b = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let head name help kind =
      if help <> "" then add "# HELP %s %s\n" name (escape_help help);
      add "# TYPE %s %s\n" name kind
    in
    List.iter
      (fun m ->
        match m with
        | Counter { name; help; value } ->
          let name = metric_name name in
          head name help "counter";
          add "%s %s\n" name (value_repr value)
        | Gauge { name; help; value } ->
          let name = metric_name name in
          head name help "gauge";
          add "%s %s\n" name (value_repr value)
        | Histogram { name; help; hist } ->
          let name = metric_name name in
          head name help "histogram";
          let total = Hist.count hist in
          let cum = ref 0 in
          (* The stored histogram has no float sum (that is what makes
             its merge exact); approximate _sum from bucket midpoints
             clamped to the observed min/max. *)
          let sum = ref 0.0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              add "%s_bucket{le=\"%s\"} %d\n" name
                (value_repr (Hist.bucket_upper_edge i))
                !cum;
              let mid =
                if i <= 0 then Hist.min_value hist
                else
                  let lo = Hist.bucket_upper_edge (i - 1)
                  and hi = Hist.bucket_upper_edge i in
                  if Float.is_finite hi then sqrt (lo *. hi)
                  else Hist.max_value hist
              in
              let mid =
                Float.min (Hist.max_value hist)
                  (Float.max (Hist.min_value hist) mid)
              in
              sum := !sum +. (float_of_int c *. mid))
            (Hist.bucket_counts hist);
          add "%s_bucket{le=\"+Inf\"} %d\n" name total;
          add "%s_sum %s\n" name (value_repr (if total = 0 then 0.0 else !sum));
          add "%s_count %d\n" name total)
      metrics;
    Buffer.contents b

  (* ---- validator ---- *)

  type family = {
    mutable ftype : string; (* "" until a TYPE line names it *)
    mutable sampled : bool;
    mutable buckets : (float * float) list; (* le, cumulative count *)
    mutable count_v : float option;
  }

  let validate text =
    let err = ref None in
    let fail line msg =
      if !err = None then err := Some (Printf.sprintf "line %d: %s" line msg)
    in
    let families : (string, family) Hashtbl.t = Hashtbl.create 16 in
    let family name =
      match Hashtbl.find_opt families name with
      | Some f -> f
      | None ->
        let f =
          { ftype = ""; sampled = false; buckets = []; count_v = None }
        in
        Hashtbl.add families name f;
        f
    in
    (* strip the histogram-series suffix so _bucket/_sum/_count samples
       attach to their family *)
    let base_of name =
      let strip suffix =
        let ls = String.length suffix and ln = String.length name in
        if ln > ls && String.sub name (ln - ls) ls = suffix then
          Some (String.sub name 0 (ln - ls))
        else None
      in
      match strip "_bucket" with
      | Some b when (family b).ftype = "histogram" -> (b, `Bucket)
      | _ -> (
        match strip "_sum" with
        | Some b when (family b).ftype = "histogram" -> (b, `Sum)
        | _ -> (
          match strip "_count" with
          | Some b when (family b).ftype = "histogram" -> (b, `Count)
          | _ -> (name, `Plain)))
    in
    let valid_name s =
      s <> ""
      && name_start_ok s.[0]
      && String.for_all name_ok s
    in
    let parse_float s =
      match s with
      | "+Inf" | "Inf" -> Some infinity
      | "-Inf" -> Some neg_infinity
      | "NaN" -> Some Float.nan
      | s -> float_of_string_opt s
    in
    let n_samples = ref 0 in
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        if !err <> None || line = "" then ()
        else if line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: kind ->
            let kind = String.concat " " kind in
            if not (valid_name name) then
              fail lineno (Printf.sprintf "bad metric name %S" name)
            else if
              not
                (List.mem kind
                   [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then fail lineno (Printf.sprintf "bad TYPE %S" kind)
            else begin
              let f = family name in
              if f.sampled then
                fail lineno
                  (Printf.sprintf "TYPE %s after its samples" name)
              else if f.ftype <> "" then
                fail lineno (Printf.sprintf "duplicate TYPE for %s" name)
              else f.ftype <- kind
            end
          | "#" :: "HELP" :: name :: _ ->
            if not (valid_name name) then
              fail lineno (Printf.sprintf "bad metric name %S" name)
          | _ -> () (* free-form comment *)
        end
        else begin
          (* sample line: name[{labels}] value [timestamp] *)
          let name_end =
            let rec go j =
              if j < String.length line && name_ok line.[j] then go (j + 1)
              else j
            in
            go 0
          in
          let name = String.sub line 0 name_end in
          if not (valid_name name) then
            fail lineno (Printf.sprintf "bad metric name at %S" line)
          else begin
            let rest =
              String.sub line name_end (String.length line - name_end)
            in
            (* split off the label block, honoring quoted strings *)
            let labels, rest =
              if rest <> "" && rest.[0] = '{' then begin
                let buf = Buffer.create 32 in
                let j = ref 1 and closed = ref false and quoted = ref false in
                while (not !closed) && !j < String.length rest do
                  let c = rest.[!j] in
                  (if !quoted then begin
                     if c = '\\' && !j + 1 < String.length rest then begin
                       Buffer.add_char buf c;
                       incr j;
                       Buffer.add_char buf rest.[!j]
                     end
                     else begin
                       if c = '"' then quoted := false;
                       Buffer.add_char buf c
                     end
                   end
                   else if c = '"' then begin
                     quoted := true;
                     Buffer.add_char buf c
                   end
                   else if c = '}' then closed := true
                   else Buffer.add_char buf c);
                  incr j
                done;
                if not !closed then begin
                  fail lineno "unterminated label block";
                  (None, "")
                end
                else
                  ( Some (Buffer.contents buf),
                    String.sub rest !j (String.length rest - !j) )
              end
              else (None, rest)
            in
            let le = ref None in
            (match labels with
             | None -> ()
             | Some body ->
               if body <> "" then
                 (* split on commas outside quotes *)
                 let parts = ref [] and buf = Buffer.create 16 in
                 let quoted = ref false in
                 String.iter
                   (fun c ->
                     if c = '"' then begin
                       quoted := not !quoted;
                       Buffer.add_char buf c
                     end
                     else if c = ',' && not !quoted then begin
                       parts := Buffer.contents buf :: !parts;
                       Buffer.clear buf
                     end
                     else Buffer.add_char buf c)
                   body;
                 if Buffer.length buf > 0 then
                   parts := Buffer.contents buf :: !parts;
                 List.iter
                   (fun part ->
                     match String.index_opt part '=' with
                     | None -> fail lineno (Printf.sprintf "bad label %S" part)
                     | Some eq ->
                       let k = String.sub part 0 eq in
                       let v =
                         String.sub part (eq + 1)
                           (String.length part - eq - 1)
                       in
                       if
                         not
                           (valid_name k
                           && not (String.contains k ':'))
                       then
                         fail lineno (Printf.sprintf "bad label name %S" k)
                       else if
                         String.length v < 2
                         || v.[0] <> '"'
                         || v.[String.length v - 1] <> '"'
                       then
                         fail lineno
                           (Printf.sprintf "label %s value not quoted" k)
                       else if k = "le" then
                         le :=
                           parse_float (String.sub v 1 (String.length v - 2)))
                   (List.rev !parts));
            if !err = None then begin
              let fields =
                List.filter (fun s -> s <> "")
                  (String.split_on_char ' '
                     (String.concat " " (String.split_on_char '\t' rest)))
              in
              match fields with
              | value :: timestamp -> (
                match parse_float value with
                | None -> fail lineno (Printf.sprintf "bad value %S" value)
                | Some v -> (
                  incr n_samples;
                  let base, role = base_of name in
                  let f = family base in
                  f.sampled <- true;
                  (match role with
                   | `Bucket -> (
                     match !le with
                     | None -> fail lineno "histogram bucket without le label"
                     | Some edge -> f.buckets <- (edge, v) :: f.buckets)
                   | `Count -> f.count_v <- Some v
                   | `Sum | `Plain -> ());
                  match timestamp with
                  | [] -> ()
                  | [ ts ] ->
                    if int_of_string_opt ts = None then
                      fail lineno (Printf.sprintf "bad timestamp %S" ts)
                  | _ -> fail lineno "trailing fields after timestamp"))
              | [] -> fail lineno "sample without a value"
            end
          end
        end)
      lines;
    (* histogram invariants: cumulative counts non-decreasing in le, and
       the +Inf bucket equal to _count *)
    if !err = None then
      Hashtbl.iter
        (fun name f ->
          if f.ftype = "histogram" && !err = None then begin
            let buckets =
              List.stable_sort
                (fun (a, _) (b, _) -> compare (a : float) b)
                (List.rev f.buckets)
            in
            let rec mono prev = function
              | [] -> ()
              | (edge, c) :: rest ->
                if c < prev then
                  fail 0
                    (Printf.sprintf
                       "histogram %s: bucket le=%s count %g below previous %g"
                       name (value_repr edge) c prev)
                else mono c rest
            in
            mono 0.0 buckets;
            if f.sampled && f.buckets = [] then
              fail 0 (Printf.sprintf "histogram %s has no buckets" name);
            (match (List.rev buckets, f.count_v) with
             | (edge, last) :: _, Some count when edge = infinity ->
               if last <> count then
                 fail 0
                   (Printf.sprintf
                      "histogram %s: +Inf bucket %g <> count %g" name last
                      count)
             | (edge, _) :: _, _ when edge <> infinity ->
               fail 0
                 (Printf.sprintf "histogram %s lacks a +Inf bucket" name)
             | _ -> ())
          end)
        families;
    match !err with
    | Some msg -> Error msg
    | None ->
      Ok
        (Printf.sprintf "%d sample(s) across %d famil(ies)" !n_samples
           (Hashtbl.length families))
end

(* ------------------------------------------------------------------ *)
(* Global switches *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let now = Unix.gettimeofday
let tracing_flag = Atomic.make false
let trace_epoch = ref 0.0

let set_tracing b =
  if b && !trace_epoch = 0.0 then trace_epoch := now ();
  Atomic.set tracing_flag b

let tracing () = Atomic.get tracing_flag

(* ------------------------------------------------------------------ *)
(* Trace ring buffers *)

(* One buffer per store = one track per domain. Events are flat arrays
   (no per-event allocation beyond string interning on first use of a
   name). Begin events reserve room for their matching end — a B is
   only recorded if both it and its eventual E fit — so the buffer can
   fill up without ever breaking B/E balance; skipped pairs are counted
   in [dropped]. End events pop [open_ids]; a skipped begin pushes a
   -1 sentinel so its end is skipped too (ends are LIFO, so sentinels
   pair up correctly). *)

let trace_capacity = ref 65536
let set_trace_capacity n = trace_capacity := max 256 n

type tbuf = {
  cap : int;
  ts : float array;
  kind : Bytes.t; (* 'B' | 'E' | 'C' *)
  eid : int array; (* interned name id *)
  evalue : float array; (* payload for 'C' events *)
  mutable len : int;
  mutable open_b : int; (* unmatched begins (room reservation) *)
  mutable open_ids : int list; (* open span name ids, innermost first *)
  mutable dropped : int;
  mutable last_ts : float; (* monotonic clamp *)
  mutable names : string array; (* id -> name *)
  mutable n_names : int;
  name_ids : (string, int) Hashtbl.t;
}

let tbuf_create cap =
  {
    cap;
    ts = Array.make cap 0.0;
    kind = Bytes.make cap ' ';
    eid = Array.make cap 0;
    evalue = Array.make cap 0.0;
    len = 0;
    open_b = 0;
    open_ids = [];
    dropped = 0;
    last_ts = 0.0;
    names = Array.make 16 "";
    n_names = 0;
    name_ids = Hashtbl.create 16;
  }

let tbuf_intern b name =
  match Hashtbl.find_opt b.name_ids name with
  | Some id -> id
  | None ->
    let id = b.n_names in
    if id >= Array.length b.names then begin
      let grown = Array.make (2 * Array.length b.names) "" in
      Array.blit b.names 0 grown 0 id;
      b.names <- grown
    end;
    b.names.(id) <- name;
    b.n_names <- id + 1;
    Hashtbl.add b.name_ids name id;
    id

let tbuf_push b k id v =
  let t = now () in
  let t = if t < b.last_ts then b.last_ts else t in
  b.last_ts <- t;
  b.ts.(b.len) <- t;
  Bytes.set b.kind b.len k;
  b.eid.(b.len) <- id;
  b.evalue.(b.len) <- v;
  b.len <- b.len + 1

let tbuf_begin b name =
  if b.len + b.open_b + 2 <= b.cap then begin
    let id = tbuf_intern b name in
    tbuf_push b 'B' id 0.0;
    b.open_b <- b.open_b + 1;
    b.open_ids <- id :: b.open_ids
  end
  else begin
    b.dropped <- b.dropped + 1;
    b.open_ids <- -1 :: b.open_ids
  end

let tbuf_end b =
  match b.open_ids with
  | [] -> () (* unbalanced end: ignore rather than corrupt *)
  | id :: rest ->
    b.open_ids <- rest;
    if id >= 0 then begin
      tbuf_push b 'E' id 0.0;
      b.open_b <- b.open_b - 1
    end
    else b.dropped <- b.dropped + 1

let tbuf_value b name v =
  if b.len + b.open_b + 1 <= b.cap then tbuf_push b 'C' (tbuf_intern b name) v
  else b.dropped <- b.dropped + 1

(* ------------------------------------------------------------------ *)
(* Per-domain stores *)

type stat = { mutable seconds : float; mutable calls : int }

type store = {
  track : int; (* 0 = main, i+1 = parallel chunk i *)
  spans : (string, stat) Hashtbl.t;
  mutable span_order : string list; (* newest first *)
  counters : (string, float ref) Hashtbl.t;
  mutable counter_order : string list;
  hists : (string, Hist.t) Hashtbl.t;
  mutable hist_order : string list;
  mutable stack : string list; (* full paths, innermost first *)
  mutable buf : tbuf option;
}

let new_store track =
  {
    track;
    spans = Hashtbl.create 64;
    span_order = [];
    counters = Hashtbl.create 64;
    counter_order = [];
    hists = Hashtbl.create 16;
    hist_order = [];
    stack = [];
    buf = None;
  }

let root = new_store 0
let max_slots = 128
let workers : store option array = Array.make max_slots None

(* The active store for the calling domain. Workers only ever record
   inside [worker_scope], which sets this; anything else (including a
   fresh domain outside a scope) falls back to the root store. *)
let current : store Obs_backend.slot = Obs_backend.make (fun () -> root)

let cur () = Obs_backend.get current

let reset_store st =
  Hashtbl.reset st.spans;
  Hashtbl.reset st.counters;
  Hashtbl.reset st.hists;
  st.span_order <- [];
  st.counter_order <- [];
  st.hist_order <- [];
  st.stack <- [];
  st.buf <- None

let reset () =
  reset_store root;
  for i = 0 to max_slots - 1 do
    match workers.(i) with
    | Some st -> reset_store st
    | None -> ()
  done

let resolve st name =
  match st.stack with [] -> name | prefix :: _ -> prefix ^ "/" ^ name

let stat_for st path =
  match Hashtbl.find_opt st.spans path with
  | Some s -> s
  | None ->
    let s = { seconds = 0.0; calls = 0 } in
    Hashtbl.add st.spans path s;
    st.span_order <- path :: st.span_order;
    s

let counter_for st path =
  match Hashtbl.find_opt st.counters path with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add st.counters path r;
    st.counter_order <- path :: st.counter_order;
    r

let hist_for st path =
  match Hashtbl.find_opt st.hists path with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add st.hists path h;
    st.hist_order <- path :: st.hist_order;
    h

let buf_of st =
  match st.buf with
  | Some b -> b
  | None ->
    let b = tbuf_create !trace_capacity in
    st.buf <- Some b;
    b

(* ------------------------------------------------------------------ *)
(* Recording entry points *)

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = cur () in
    let path = resolve st name in
    let s = stat_for st path in
    s.calls <- s.calls + 1;
    st.stack <- path :: st.stack;
    (* latch the tracing flag so begin/end stay paired even if it flips
       mid-span *)
    let traced = Atomic.get tracing_flag in
    if traced then tbuf_begin (buf_of st) name;
    let t0 = now () in
    let finish () =
      s.seconds <- s.seconds +. Float.max (now () -. t0) 0.0;
      if traced then tbuf_end (buf_of st);
      match st.stack with
      | _ :: rest -> st.stack <- rest
      | [] -> ()
    in
    match f () with
    | v ->
      finish ();
      v
    | exception exn ->
      finish ();
      raise exn
  end

let record_span name ~seconds ~calls =
  if Atomic.get enabled_flag then begin
    let st = cur () in
    let s = stat_for st (resolve st name) in
    s.seconds <- s.seconds +. Float.max seconds 0.0;
    s.calls <- s.calls + calls
  end

let count name v =
  if Atomic.get enabled_flag then begin
    let st = cur () in
    let r = counter_for st (resolve st name) in
    r := !r +. float_of_int v
  end

let gauge name v =
  if Atomic.get enabled_flag then begin
    let st = cur () in
    counter_for st (resolve st name) := v
  end

let add_absolute name v =
  if Atomic.get enabled_flag then begin
    let st = cur () in
    let r = counter_for st name in
    r := !r +. v
  end

let observe name v =
  if Atomic.get enabled_flag then begin
    let st = cur () in
    Hist.add (hist_for st (resolve st name)) v
  end

let histogram name =
  if not (Atomic.get enabled_flag) then None
  else begin
    let st = cur () in
    Some (hist_for st (resolve st name))
  end

let trace_counter name v =
  if Atomic.get enabled_flag && Atomic.get tracing_flag then
    tbuf_value (buf_of (cur ())) name v

let current_prefix () =
  match (cur ()).stack with [] -> "" | prefix :: _ -> prefix

(* ------------------------------------------------------------------ *)
(* Worker scopes *)

let worker_scope ~slot ~prefix f =
  if slot < 0 || slot >= max_slots then f ()
  else begin
    let st =
      match workers.(slot) with
      | Some st -> st
      | None ->
        let st = new_store (slot + 1) in
        workers.(slot) <- Some st;
        st
    in
    let saved_stack = st.stack in
    st.stack <- (if prefix = "" then [] else [ prefix ]);
    let prev = Obs_backend.get current in
    Obs_backend.set current st;
    Fun.protect
      ~finally:(fun () ->
        Obs_backend.set current prev;
        st.stack <- saved_stack)
      f
  end

(* ------------------------------------------------------------------ *)
(* Records *)

type span_stat = { path : string; seconds : float; calls : int }

type record = {
  meta : (string * Json.t) list;
  spans : span_stat list;
  counters : (string * float) list;
  hists : (string * Hist.t) list;
}

(* Root first, then worker slots ascending: the merge order (and hence
   first-seen ordering of every path in the record) is a pure function
   of which slots recorded what, not of domain scheduling. *)
let all_stores () =
  let rec collect i acc =
    if i < 0 then acc
    else
      collect (i - 1)
        (match workers.(i) with Some st -> st :: acc | None -> acc)
  in
  root :: collect (max_slots - 1) []

let busy_prefix = "par/busy_s#"

let capture ?(meta = []) () =
  let stores = all_stores () in
  let span_tbl : (string, stat) Hashtbl.t = Hashtbl.create 64 in
  let span_rev = ref [] in
  let counter_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  let counter_rev = ref [] in
  let hist_tbl : (string, Hist.t) Hashtbl.t = Hashtbl.create 16 in
  let hist_rev = ref [] in
  List.iter
    (fun (st : store) ->
      List.iter
        (fun path ->
          let s = Hashtbl.find st.spans path in
          match Hashtbl.find_opt span_tbl path with
          | Some m ->
            m.seconds <- m.seconds +. s.seconds;
            m.calls <- m.calls + s.calls
          | None ->
            Hashtbl.add span_tbl path { seconds = s.seconds; calls = s.calls };
            span_rev := path :: !span_rev)
        (List.rev st.span_order);
      List.iter
        (fun path ->
          let v = !(Hashtbl.find st.counters path) in
          match Hashtbl.find_opt counter_tbl path with
          | Some r -> r := !r +. v
          | None ->
            Hashtbl.add counter_tbl path (ref v);
            counter_rev := path :: !counter_rev)
        (List.rev st.counter_order);
      List.iter
        (fun path ->
          let h = Hashtbl.find st.hists path in
          match Hashtbl.find_opt hist_tbl path with
          | Some m -> Hashtbl.replace hist_tbl path (Hist.merge m h)
          | None ->
            Hashtbl.add hist_tbl path (Hist.copy h);
            hist_rev := path :: !hist_rev)
        (List.rev st.hist_order))
    stores;
  let counters =
    List.rev_map (fun path -> (path, !(Hashtbl.find counter_tbl path)))
      !counter_rev
  in
  (* Derive the load-imbalance ratio from the per-slot busy-time
     counters flushed by Par.parallel_for: max busy / mean busy over the
     slots that ran (1.0 = perfectly balanced). *)
  let counters =
    let busy =
      List.filter
        (fun (k, _) -> String.length k > String.length busy_prefix
                       && String.sub k 0 (String.length busy_prefix) = busy_prefix)
        counters
    in
    match busy with
    | [] -> counters
    | _ ->
      let n = float_of_int (List.length busy) in
      let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 busy in
      let mx = List.fold_left (fun a (_, v) -> Float.max a v) 0.0 busy in
      if total > 0.0 then counters @ [ ("par/imbalance", mx /. (total /. n)) ]
      else counters
  in
  {
    meta;
    spans =
      List.rev_map
        (fun path ->
          let s = Hashtbl.find span_tbl path in
          { path; seconds = s.seconds; calls = s.calls })
        !span_rev;
    counters;
    hists =
      List.rev_map (fun path -> (path, Hashtbl.find hist_tbl path)) !hist_rev;
  }

let record_to_json r =
  Json.Obj
    [
      ("schema", Json.Str "powerrchol-telemetry/v2");
      ("meta", Json.Obj r.meta);
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("path", Json.Str s.path);
                   ("seconds", Json.Float s.seconds);
                   ("calls", Json.Int s.calls);
                 ])
             r.spans) );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.counters) );
      ("hists", Json.Obj (List.map (fun (k, h) -> (k, Hist.to_json h)) r.hists));
    ]

let record_of_json j =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let obj_fields what = function
    | Json.Obj fields -> Ok fields
    | _ -> Error (what ^ ": expected an object")
  in
  let* _ = obj_fields "record" j in
  let* meta =
    match Json.member "meta" j with
    | Some m -> obj_fields "meta" m
    | None -> Error "record: missing \"meta\""
  in
  let* spans =
    match Json.member "spans" j with
    | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
          match
            ( Json.member "path" item,
              Option.bind (Json.member "seconds" item) Json.to_float,
              Json.member "calls" item )
          with
          | Some (Json.Str path), Some seconds, Some (Json.Int calls) ->
            go ({ path; seconds; calls } :: acc) rest
          | _ -> Error "record: malformed span entry")
      in
      go [] items
    | _ -> Error "record: missing \"spans\" list"
  in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
          match Json.to_float v with
          | Some f -> go ((k, f) :: acc) rest
          | None -> (
            (* non-finite counters serialize as null (JSON has no
               NaN/Inf); accept them back so every record round-trips *)
            match v with
            | Json.Null -> go ((k, Float.nan) :: acc) rest
            | _ -> Error (Printf.sprintf "record: counter %S not numeric" k)))
      in
      go [] fields
    | _ -> Error "record: missing \"counters\" object"
  in
  let* hists =
    (* absent in v1 records: accept and default to empty *)
    match Json.member "hists" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
          match Hist.of_json v with
          | Ok h -> go ((k, h) :: acc) rest
          | Error e -> Error (Printf.sprintf "record: hist %S: %s" k e))
      in
      go [] fields
    | Some _ -> Error "record: \"hists\" must be an object"
  in
  Ok { meta; spans; counters; hists }

let meta_value_to_string = function
  | Json.Str s -> s
  | v -> Json.to_string v

let record_to_text r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "telemetry\n";
  List.iter
    (fun (k, v) -> add "  %-18s %s\n" k (meta_value_to_string v))
    r.meta;
  if r.spans <> [] then begin
    add "spans\n";
    let width =
      List.fold_left (fun w s -> max w (String.length s.path)) 0 r.spans
    in
    List.iter
      (fun s ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 s.path
        in
        add "  %s%-*s %10.6f s  (%d call%s)\n"
          (String.make (2 * depth) ' ')
          (max 1 (width - (2 * depth)))
          s.path s.seconds s.calls
          (if s.calls = 1 then "" else "s"))
      r.spans
  end;
  if r.counters <> [] then begin
    add "counters\n";
    let width =
      List.fold_left (fun w (k, _) -> max w (String.length k)) 0 r.counters
    in
    List.iter
      (fun (k, v) ->
        if Float.is_integer v && Float.abs v < 1e15 then
          add "  %-*s %d\n" width k (int_of_float v)
        else add "  %-*s %g\n" width k v)
      r.counters
  end;
  let shown = List.filter (fun (_, h) -> Hist.count h > 0) r.hists in
  if shown <> [] then begin
    add "histograms\n";
    let width =
      List.fold_left (fun w (k, _) -> max w (String.length k)) 0 shown
    in
    List.iter
      (fun (k, h) ->
        add "  %-*s n=%-6d p50=%-12.6g p95=%-12.6g p99=%-12.6g max=%g\n" width
          k (Hist.count h) (Hist.percentile h 50.0) (Hist.percentile h 95.0)
          (Hist.percentile h 99.0) (Hist.max_value h))
      shown
  end;
  Buffer.contents buf

let pp_record fmt r = Format.pp_print_string fmt (record_to_text r)

(* ------------------------------------------------------------------ *)
(* Trace export *)

module Trace = struct
  type event = {
    track : int;
    name : string;
    phase : char;
    ts : float;
    value : float;
  }

  let set_capacity = set_trace_capacity

  let events_of st =
    match st.buf with
    | None -> []
    | Some b ->
      let acc = ref [] in
      for i = b.len - 1 downto 0 do
        acc :=
          {
            track = st.track;
            name = b.names.(b.eid.(i));
            phase = Bytes.get b.kind i;
            ts = b.ts.(i);
            value = b.evalue.(i);
          }
          :: !acc
      done;
      !acc

  let events () = List.concat_map events_of (all_stores ())

  let dropped () =
    List.fold_left
      (fun acc st -> match st.buf with Some b -> acc + b.dropped | None -> acc)
      0 (all_stores ())

  let track_label t = if t = 0 then "main" else Printf.sprintf "domain%d" (t - 1)

  let to_json () =
    let epoch = !trace_epoch in
    let us t = (t -. epoch) *. 1e6 in
    let stores =
      List.filter (fun (st : store) -> st.buf <> None) (all_stores ())
    in
    let meta_events =
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.Str "powerrchol") ]);
        ]
      :: List.map
           (fun (st : store) ->
             Json.Obj
               [
                 ("name", Json.Str "thread_name");
                 ("ph", Json.Str "M");
                 ("pid", Json.Int 1);
                 ("tid", Json.Int st.track);
                 ("args", Json.Obj [ ("name", Json.Str (track_label st.track)) ]);
               ])
           stores
    in
    let event_json ev =
      let base =
        [
          ("name", Json.Str ev.name);
          ("ph", Json.Str (String.make 1 ev.phase));
          ("ts", Json.Float (us ev.ts));
          ("pid", Json.Int 1);
          ("tid", Json.Int ev.track);
        ]
      in
      Json.Obj
        (if ev.phase = 'C' then
           base @ [ ("args", Json.Obj [ ("value", Json.Float ev.value) ]) ]
         else base)
    in
    let evs = List.concat_map (fun st -> List.map event_json (events_of st)) stores in
    Json.Obj
      [
        ("schema", Json.Str "powerrchol-trace/v1");
        ("displayTimeUnit", Json.Str "ms");
        ("dropped", Json.Int (dropped ()));
        ("traceEvents", Json.List (meta_events @ evs));
      ]

  let write path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string (to_json ()));
        output_char oc '\n')

  let validate j =
    match Json.member "traceEvents" j with
    | Some (Json.List evs) -> (
      let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
      let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
      let n_events = ref 0 in
      let err = ref None in
      let fail msg = if !err = None then err := Some msg in
      let get tbl mk tid =
        match Hashtbl.find_opt tbl tid with
        | Some r -> r
        | None ->
          let r = mk () in
          Hashtbl.add tbl tid r;
          r
      in
      List.iteri
        (fun i ev ->
          if !err = None then begin
            let ph =
              match Json.member "ph" ev with Some (Json.Str p) -> p | _ -> ""
            in
            let tid =
              match Json.member "tid" ev with Some (Json.Int t) -> t | _ -> 0
            in
            let name =
              match Json.member "name" ev with
              | Some (Json.Str s) -> Some s
              | _ -> None
            in
            let check_ts () =
              match Option.bind (Json.member "ts" ev) Json.to_float with
              | None -> fail (Printf.sprintf "event %d: missing ts" i)
              | Some t ->
                let last = get last_ts (fun () -> ref neg_infinity) tid in
                if t < !last then
                  fail
                    (Printf.sprintf
                       "event %d: non-monotonic ts on track %d (%g < %g)" i tid
                       t !last)
                else last := t
            in
            match ph with
            | "M" -> ()
            | "B" -> (
              check_ts ();
              incr n_events;
              match name with
              | None -> fail (Printf.sprintf "event %d: B without name" i)
              | Some nm ->
                let st = get stacks (fun () -> ref []) tid in
                st := nm :: !st)
            | "E" -> (
              check_ts ();
              incr n_events;
              let st = get stacks (fun () -> ref []) tid in
              match !st with
              | [] ->
                fail (Printf.sprintf "event %d: E without open B on track %d" i tid)
              | top :: rest -> (
                st := rest;
                match name with
                | Some nm when nm <> top ->
                  fail
                    (Printf.sprintf
                       "event %d: E name %S does not match open B %S" i nm top)
                | _ -> ()))
            | "C" | "i" | "I" ->
              check_ts ();
              incr n_events
            | p -> fail (Printf.sprintf "event %d: unexpected phase %S" i p)
          end)
        evs;
      (match !err with
       | None ->
         Hashtbl.iter
           (fun tid st ->
             match !st with
             | [] -> ()
             | top :: _ ->
               fail
                 (Printf.sprintf "track %d: unbalanced B %S at end of trace" tid
                    top))
           stacks
       | Some _ -> ());
      match !err with
      | Some msg -> Error msg
      | None ->
        Ok
          (Printf.sprintf "%d events on %d track(s)" !n_events
             (Hashtbl.length last_ts)))
    | _ -> Error "trace: missing \"traceEvents\" list"
end
