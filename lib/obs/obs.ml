(* Observability layer: span timers, counters, telemetry records.

   Everything funnels through one global, single-threaded store. The
   contract that matters for performance: when [enabled_flag] is false,
   every entry point is a single load-and-branch with no allocation, so
   instrumented code paths cost nothing in benchmark runs. *)

(* ------------------------------------------------------------------ *)
(* JSON *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Finite floats must survive a print/parse round trip exactly:
     integral values keep a ".0" so they stay floats, everything else
     gets 17 significant digits (enough for any IEEE double). *)
  let float_repr f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let to_string ?(indent = false) t =
    let buf = Buffer.create 256 in
    let pad depth =
      if indent then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * depth) ' ')
      end
    in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_repr f)
      | Str s -> escape buf s
      | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        if items <> [] then pad depth;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) v)
          fields;
        if fields <> [] then pad depth;
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else begin
          let c = s.[!pos] in
          advance ();
          if c = '"' then Buffer.contents buf
          else if c = '\\' then begin
            (if !pos >= n then fail "unterminated escape");
            let e = s.[!pos] in
            advance ();
            (match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> fail "bad \\u escape"
               in
               if code < 256 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_char buf '?'
             | _ -> fail "bad escape");
            go ()
          end
          else begin
            Buffer.add_char buf c;
            go ()
          end
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items := parse_value () :: !items;
              go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields := field () :: !fields;
              go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
      | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | _ -> fail (Printf.sprintf "unexpected character %C" c))
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Global store *)

type stat = { mutable seconds : float; mutable calls : int }

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let now = Unix.gettimeofday

let spans : (string, stat) Hashtbl.t = Hashtbl.create 64
let span_order : string list ref = ref [] (* newest first *)
let counters : (string, float ref) Hashtbl.t = Hashtbl.create 64
let counter_order : string list ref = ref []
let stack : string list ref = ref [] (* full paths, innermost first *)

let reset () =
  Hashtbl.reset spans;
  Hashtbl.reset counters;
  span_order := [];
  counter_order := [];
  stack := []

let resolve name =
  match !stack with [] -> name | prefix :: _ -> prefix ^ "/" ^ name

let stat_for path =
  match Hashtbl.find_opt spans path with
  | Some s -> s
  | None ->
    let s = { seconds = 0.0; calls = 0 } in
    Hashtbl.add spans path s;
    span_order := path :: !span_order;
    s

let counter_for path =
  match Hashtbl.find_opt counters path with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add counters path r;
    counter_order := path :: !counter_order;
    r

let span name f =
  if not !enabled_flag then f ()
  else begin
    let path = resolve name in
    let s = stat_for path in
    s.calls <- s.calls + 1;
    stack := path :: !stack;
    let t0 = now () in
    let finish () =
      s.seconds <- s.seconds +. Float.max (now () -. t0) 0.0;
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> ()
    in
    match f () with
    | v ->
      finish ();
      v
    | exception exn ->
      finish ();
      raise exn
  end

let record_span name ~seconds ~calls =
  if !enabled_flag then begin
    let s = stat_for (resolve name) in
    s.seconds <- s.seconds +. Float.max seconds 0.0;
    s.calls <- s.calls + calls
  end

let count name v =
  if !enabled_flag then begin
    let r = counter_for (resolve name) in
    r := !r +. float_of_int v
  end

let gauge name v = if !enabled_flag then counter_for (resolve name) := v

(* ------------------------------------------------------------------ *)
(* Records *)

type span_stat = { path : string; seconds : float; calls : int }

type record = {
  meta : (string * Json.t) list;
  spans : span_stat list;
  counters : (string * float) list;
}

let capture ?(meta = []) () =
  {
    meta;
    spans =
      List.rev_map
        (fun path ->
          let s = Hashtbl.find spans path in
          { path; seconds = s.seconds; calls = s.calls })
        !span_order;
    counters =
      List.rev_map (fun path -> (path, !(Hashtbl.find counters path)))
        !counter_order;
  }

let record_to_json r =
  Json.Obj
    [
      ("schema", Json.Str "powerrchol-telemetry/v1");
      ("meta", Json.Obj r.meta);
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("path", Json.Str s.path);
                   ("seconds", Json.Float s.seconds);
                   ("calls", Json.Int s.calls);
                 ])
             r.spans) );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.counters) );
    ]

let record_of_json j =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let obj_fields what = function
    | Json.Obj fields -> Ok fields
    | _ -> Error (what ^ ": expected an object")
  in
  let* _ = obj_fields "record" j in
  let* meta =
    match Json.member "meta" j with
    | Some m -> obj_fields "meta" m
    | None -> Error "record: missing \"meta\""
  in
  let* spans =
    match Json.member "spans" j with
    | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
          match
            ( Json.member "path" item,
              Option.bind (Json.member "seconds" item) Json.to_float,
              Json.member "calls" item )
          with
          | Some (Json.Str path), Some seconds, Some (Json.Int calls) ->
            go ({ path; seconds; calls } :: acc) rest
          | _ -> Error "record: malformed span entry")
      in
      go [] items
    | _ -> Error "record: missing \"spans\" list"
  in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
          match Json.to_float v with
          | Some f -> go ((k, f) :: acc) rest
          | None -> Error (Printf.sprintf "record: counter %S not numeric" k))
      in
      go [] fields
    | _ -> Error "record: missing \"counters\" object"
  in
  Ok { meta; spans; counters }

let meta_value_to_string = function
  | Json.Str s -> s
  | v -> Json.to_string v

let record_to_text r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "telemetry\n";
  List.iter
    (fun (k, v) -> add "  %-18s %s\n" k (meta_value_to_string v))
    r.meta;
  if r.spans <> [] then begin
    add "spans\n";
    let width =
      List.fold_left (fun w s -> max w (String.length s.path)) 0 r.spans
    in
    List.iter
      (fun s ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 s.path
        in
        add "  %s%-*s %10.6f s  (%d call%s)\n"
          (String.make (2 * depth) ' ')
          (max 1 (width - (2 * depth)))
          s.path s.seconds s.calls
          (if s.calls = 1 then "" else "s"))
      r.spans
  end;
  if r.counters <> [] then begin
    add "counters\n";
    let width =
      List.fold_left (fun w (k, _) -> max w (String.length k)) 0 r.counters
    in
    List.iter
      (fun (k, v) ->
        if Float.is_integer v && Float.abs v < 1e15 then
          add "  %-*s %d\n" width k (int_of_float v)
        else add "  %-*s %g\n" width k v)
      r.counters
  end;
  Buffer.contents buf

let pp_record fmt r = Format.pp_print_string fmt (record_to_text r)
