(** Zero-dependency observability: span timers, counters, and telemetry
    records with text / JSON exporters.

    The layer is designed to cost (almost) nothing when disabled: every
    entry point checks {!enabled} once and returns immediately, allocating
    nothing on the fast path. Hot loops that cannot afford even a closure
    per call read [enabled ()] once, accumulate privately, and flush a
    single {!record_span} / {!count} at the end.

    All state is global and single-threaded, matching the rest of the
    code base. Timers use [Unix.gettimeofday]; elapsed times are clamped
    at zero so a clock step backwards can never produce negative spans. *)

(** {1 Minimal JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
  (** Serialize. Non-finite floats become [null] (JSON has no NaN/Inf);
      finite floats print with enough digits to round-trip exactly. *)

  val parse : string -> (t, string) result
  (** Strict recursive-descent parser for the subset emitted by
      {!to_string} (standard JSON; [\uXXXX] escapes below 256 decoded,
      others replaced by [?]). *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] elsewhere. *)

  val to_float : t -> float option
  (** Numeric view: [Int] and [Float] both convert; everything else is
      [None]. *)
end

(** {1 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans and counters and clear the span stack. *)

val now : unit -> float
(** The wall clock used by the span timers (seconds). *)

(** {1 Spans}

    A span is a named, timed region. Nesting is tracked with a stack:
    entering span ["factor"] inside span ["solve"] records under the path
    ["solve/factor"]. Re-entering a path accumulates (total seconds,
    number of calls), so per-column inner-loop spans stay cheap to
    aggregate. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside the named span. When disabled this is
    exactly [f ()]. Exceptions propagate; the elapsed time is recorded
    either way. *)

val record_span : string -> seconds:float -> calls:int -> unit
(** Merge an externally measured aggregate into the span named [name]
    under the current stack prefix — the flush half of the
    read-[enabled]-once pattern for hot loops. No-op when disabled. *)

(** {1 Counters} *)

val count : string -> int -> unit
(** Add to a (stack-prefixed) counter. No-op when disabled. *)

val gauge : string -> float -> unit
(** Set a (stack-prefixed) gauge to an absolute value. No-op when
    disabled. *)

(** {1 Telemetry records} *)

type span_stat = { path : string; seconds : float; calls : int }

type record = {
  meta : (string * Json.t) list;
      (** free-form header: solver, case, n, nnz, iterations, status, ... *)
  spans : span_stat list;  (** first-entered order, hierarchical paths *)
  counters : (string * float) list;  (** first-touched order *)
}

val capture : ?meta:(string * Json.t) list -> unit -> record
(** Snapshot the current spans and counters (does not reset). *)

val record_to_json : record -> Json.t
val record_of_json : Json.t -> (record, string) result
(** Inverse of {!record_to_json}: [record_of_json (record_to_json r) = Ok r]
    for records with finite span times and counter values. *)

val record_to_text : record -> string
(** Human-readable report: meta lines, then the span tree indented by
    depth, then counters. *)

val pp_record : Format.formatter -> record -> unit
