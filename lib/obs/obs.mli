(** Zero-dependency observability: span timers, counters, latency
    histograms, event traces, and telemetry records with text / JSON
    exporters.

    The layer is designed to cost (almost) nothing when disabled: every
    entry point checks {!enabled} once and returns immediately,
    allocating nothing on the fast path. Hot loops that cannot afford
    even a closure per call read [enabled ()] once, accumulate
    privately, and flush a single {!record_span} / {!count} at the end.

    v2 is domain-safe. State lives in per-domain stores: the root store
    belongs to the main domain, and [Par] workers record into worker
    stores (one per parallel chunk) entered via {!worker_scope}.
    {!capture} merges all stores deterministically — root first, then
    worker slots in ascending order — summing span times and counters
    and merging histograms, so a profiled parallel run reports the same
    counter totals as the sequential run, in the same first-seen order.

    Timers use [Unix.gettimeofday]; elapsed times are clamped at zero so
    a clock step backwards can never produce negative spans. *)

(** {1 Minimal JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
  (** Serialize. Non-finite floats become [null] (JSON has no NaN/Inf);
      finite floats print with enough digits to round-trip exactly.
      Control characters are emitted as [\uXXXX] escapes; everything
      else passes through as UTF-8 bytes. *)

  val parse : string -> (t, string) result
  (** Strict recursive-descent parser for standard JSON. [\uXXXX]
      escapes decode to UTF-8 bytes; surrogate pairs combine into one
      astral code point, and lone surrogates decode to U+FFFD. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] elsewhere. *)

  val to_float : t -> float option
  (** Numeric view: [Int] and [Float] both convert; everything else is
      [None]. *)
end

(** {1 Histograms} *)

module Hist : sig
  type t
  (** A log-bucketed histogram: quarter-octave buckets (four per power
      of two, ~19% wide) spanning 2{^-120}..2{^56}, plus underflow and
      overflow sinks. Only integer bucket counts and exact min/max are
      stored — no float sum — so {!merge} is exactly associative and
      merged captures are deterministic. *)

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one sample. Non-finite samples are ignored; zero and
      negative samples land in the underflow bucket. *)

  val count : t -> int

  val min_value : t -> float
  (** Smallest recorded sample ([infinity] when empty). *)

  val max_value : t -> float
  (** Largest recorded sample ([neg_infinity] when empty). *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100], nearest-rank. The result is
      the geometric midpoint of the selected bucket clamped to the
      observed min/max, so it is within half a bucket width (~9%) of
      the true order statistic. [nan] when empty. *)

  val merge : t -> t -> t
  (** Pure elementwise merge; exactly associative and commutative. *)

  val copy : t -> t
  val to_json : t -> Json.t

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json} (the derived p50/p95/p99 convenience fields
      are recomputed, not parsed). *)

  val bucket_counts : t -> (int * int) list
  (** Non-empty buckets as [(index, count)] pairs in ascending index
      order. Indices are stable across processes (the bucket layout is a
      compile-time constant), so exporters can label them with
      {!bucket_upper_edge}. *)

  val bucket_upper_edge : int -> float
  (** Upper edge of bucket [i]: the underflow sink (index 0) ends at the
      lowest representable edge, interior buckets at
      2{^min_exp + i/4}, and the overflow sink is [infinity]. *)
end

(** {1 Rolling windows} *)

module Window : sig
  (** Rolling-window aggregation: a ring of fixed wall-clock buckets
      (epoch [floor(now / bucket_s)] lands in slot [epoch mod slots]),
      lazily zeroed on wrap. Queries sum the most recent
      [ceil(span_s / bucket_s)] buckets including the current partial
      one, so a window is deterministic given the samples and their
      timestamps — [?now] is injectable everywhere for tests and
      defaults to the wall clock. *)

  type t
  (** A windowed counter. *)

  val create : ?bucket_s:float -> ?slots:int -> unit -> t
  (** Default 5-second buckets, 181 slots (covers a 15-minute window
      plus the current partial bucket). [slots] is clamped to >= 2. *)

  val add : ?now:float -> t -> float -> unit
  val sum : ?now:float -> t -> span_s:float -> float

  val rate : ?now:float -> t -> span_s:float -> float
  (** [sum /. span_s]; [0.0] when [span_s <= 0.0]. *)

  type hist
  (** A windowed histogram: one {!Hist.t} per slot. *)

  val create_hist : ?bucket_s:float -> ?slots:int -> unit -> hist
  val observe : ?now:float -> hist -> float -> unit

  val merged : ?now:float -> hist -> span_s:float -> Hist.t
  (** Merge the live slots covering the window, oldest first. Because
      {!Hist.merge} is exactly associative, the result is a pure
      function of the recorded samples. *)
end

(** {1 Prometheus exposition} *)

module Prom : sig
  (** Prometheus text exposition format 0.0.4: rendering of counters,
      gauges, and log-bucketed {!Hist} histograms (cumulative [le]
      buckets), plus a structural validator used as the bundled
      fallback where promtool is unavailable. *)

  type metric =
    | Counter of { name : string; help : string; value : float }
    | Gauge of { name : string; help : string; value : float }
    | Histogram of { name : string; help : string; hist : Hist.t }

  val metric_name : string -> string
  (** Map an Obs path (["serve/requests"]) onto the metric-name
      alphabet [[a-zA-Z_:][a-zA-Z0-9_:]*] (slashes and other separators
      become underscores; a leading digit gains a [_] prefix). *)

  val render : metric list -> string
  (** Render [# HELP] / [# TYPE] headers and samples. Histograms emit
      cumulative [_bucket{le="..."}] series (one per non-empty bucket,
      ascending, plus [+Inf]), [_count], and a [_sum] approximated from
      bucket geometric midpoints clamped to the observed min/max (the
      histogram stores no float sum — that is what makes its merge
      exact). Non-finite values render as [NaN] / [+Inf] / [-Inf],
      which the text format allows. *)

  val validate : string -> (string, string) result
  (** Structural checker for text-format 0.0.4 exposition: metric and
      label names must match the grammar, label values must be quoted,
      sample values must parse as floats ([+Inf]/[-Inf]/[NaN]
      included), [TYPE] lines must precede their samples and not
      repeat, and histogram families must have cumulative bucket counts
      that are non-decreasing in [le] with a [+Inf] bucket equal to
      [_count]. [Ok summary] on success. *)
end

(** {1 Global switches} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val tracing : unit -> bool
(** Whether event tracing is armed. Trace events are only recorded when
    both {!enabled} and {!tracing} are true. *)

val set_tracing : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans, counters, histograms, and trace buffers in
    every store (root and workers) and clear the span stacks. The
    enabled/tracing switches are left as they are. *)

val now : unit -> float
(** The wall clock used by the span timers (seconds). *)

(** {1 Spans}

    A span is a named, timed region. Nesting is tracked with a
    per-store stack: entering span ["factor"] inside span ["solve"]
    records under the path ["solve/factor"]. Re-entering a path
    accumulates (total seconds, number of calls), so per-column
    inner-loop spans stay cheap to aggregate. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside the named span. When disabled this is
    exactly [f ()]. Exceptions propagate; the elapsed time is recorded
    either way. When tracing is armed, a begin/end event pair is also
    written to the calling domain's trace track. *)

val record_span : string -> seconds:float -> calls:int -> unit
(** Merge an externally measured aggregate into the span named [name]
    under the current stack prefix — the flush half of the
    read-[enabled]-once pattern for hot loops. No-op when disabled. *)

(** {1 Counters} *)

val count : string -> int -> unit
(** Add to a (stack-prefixed) counter. No-op when disabled. *)

val gauge : string -> float -> unit
(** Set a (stack-prefixed) gauge to an absolute value. No-op when
    disabled. Use this — not {!count} — for values that describe the
    current artifact (sizes, maxima): a counter would sum across
    repeated runs in one capture. *)

val add_absolute : string -> float -> unit
(** Add to a counter addressed by its full path, ignoring the span
    stack. For infrastructure totals (e.g. the [Par] pool's per-slot
    busy times) that must land on one well-known path no matter where
    the flushing code happens to run. No-op when disabled. *)

val observe : string -> float -> unit
(** Record one sample into a (stack-prefixed) latency histogram. No-op
    when disabled. *)

val histogram : string -> Hist.t option
(** Resolve a (stack-prefixed) histogram handle once, for hot loops
    that record per-iteration samples with {!Hist.add} directly.
    [None] when disabled. *)

val trace_counter : string -> float -> unit
(** Emit a counter sample (Chrome [ph:"C"] event) on the calling
    domain's trace track — e.g. a per-iteration residual norm. No-op
    unless both enabled and tracing. *)

(** {1 Worker scopes} *)

val worker_scope : slot:int -> prefix:string -> (unit -> 'a) -> 'a
(** [worker_scope ~slot ~prefix f] runs [f] with the calling domain's
    recording redirected into the worker store for [slot] (created on
    first use), its span stack seeded with [prefix] (the caller's
    current path, so worker-recorded paths line up with the sequential
    run). The previous store binding is restored on exit, exceptions
    included. Used by [Par.parallel_for]; slot [i] surfaces as trace
    track ["domain<i>"]. *)

val current_prefix : unit -> string
(** The innermost open span path of the calling domain's store, [""] at
    top level. This is what [Par] passes to {!worker_scope}. *)

(** {1 Telemetry records} *)

type span_stat = { path : string; seconds : float; calls : int }

type record = {
  meta : (string * Json.t) list;
      (** free-form header: solver, case, n, nnz, iterations, status, ... *)
  spans : span_stat list;  (** first-entered order, hierarchical paths *)
  counters : (string * float) list;  (** first-touched order *)
  hists : (string * Hist.t) list;  (** first-touched order *)
}

val capture : ?meta:(string * Json.t) list -> unit -> record
(** Snapshot the merge of all stores (does not reset). Merge order is
    root store first, then worker slots ascending, so the result is
    deterministic at any domain count. When per-slot busy-time counters
    ([par/busy_s#i]) are present, a derived [par/imbalance] counter
    (max busy / mean busy, 1.0 = perfectly balanced) is appended. *)

val record_to_json : record -> Json.t
(** Schema [powerrchol-telemetry/v2] (v1 plus the ["hists"] object). *)

val record_of_json : Json.t -> (record, string) result
(** Inverse of {!record_to_json}: [record_of_json (record_to_json r) = Ok r]
    for records with finite span times and counter values. Accepts v1
    records (missing ["hists"] defaults to empty). *)

val record_to_text : record -> string
(** Human-readable report: meta lines, then the span tree indented by
    depth, then counters, then histogram percentiles. *)

val pp_record : Format.formatter -> record -> unit

(** {1 Event traces}

    When {!tracing} is armed, spans additionally log timestamped
    begin/end events into a fixed-capacity per-domain ring buffer (one
    Chrome trace track per domain). Begin events reserve room for their
    matching end, so a full buffer drops whole pairs (counted in
    {!Trace.dropped}) and never breaks B/E balance. Timestamps are
    clamped monotonic per track. *)

module Trace : sig
  type event = {
    track : int;  (** 0 = main, [i+1] = parallel chunk [i] *)
    name : string;
    phase : char;  (** 'B' | 'E' | 'C' *)
    ts : float;  (** absolute seconds *)
    value : float;  (** payload for 'C' events *)
  }

  val set_capacity : int -> unit
  (** Capacity (events per track) for buffers created afterwards;
      clamped to at least 256. Default 65536. *)

  val events : unit -> event list
  (** All recorded events, grouped by track, chronological within each
      track. *)

  val dropped : unit -> int
  (** Total events dropped across all tracks due to full buffers. *)

  val to_json : unit -> Json.t
  (** Chrome trace-event JSON (object form): a ["traceEvents"] list
      with process/thread-name metadata, one [tid] per track, [ts] in
      microseconds relative to the first [set_tracing true]. Schema tag
      [powerrchol-trace/v1]. Loadable in Perfetto / chrome://tracing. *)

  val write : string -> unit
  (** Write {!to_json} to a file (compact, one line). *)

  val validate : Json.t -> (string, string) result
  (** Structural well-formedness gate for an emitted trace: every track
      must have balanced B/E events with matching names and
      non-decreasing timestamps, and only phases M/B/E/C/i/I may
      appear. [Ok summary] on success, [Error reason] otherwise. *)
end
