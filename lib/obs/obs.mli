(** Zero-dependency observability: span timers, counters, latency
    histograms, event traces, and telemetry records with text / JSON
    exporters.

    The layer is designed to cost (almost) nothing when disabled: every
    entry point checks {!enabled} once and returns immediately,
    allocating nothing on the fast path. Hot loops that cannot afford
    even a closure per call read [enabled ()] once, accumulate
    privately, and flush a single {!record_span} / {!count} at the end.

    v2 is domain-safe. State lives in per-domain stores: the root store
    belongs to the main domain, and [Par] workers record into worker
    stores (one per parallel chunk) entered via {!worker_scope}.
    {!capture} merges all stores deterministically — root first, then
    worker slots in ascending order — summing span times and counters
    and merging histograms, so a profiled parallel run reports the same
    counter totals as the sequential run, in the same first-seen order.

    Timers use [Unix.gettimeofday]; elapsed times are clamped at zero so
    a clock step backwards can never produce negative spans. *)

(** {1 Minimal JSON} *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
  (** Serialize. Non-finite floats become [null] (JSON has no NaN/Inf);
      finite floats print with enough digits to round-trip exactly.
      Control characters are emitted as [\uXXXX] escapes; everything
      else passes through as UTF-8 bytes. *)

  val parse : string -> (t, string) result
  (** Strict recursive-descent parser for standard JSON. [\uXXXX]
      escapes decode to UTF-8 bytes; surrogate pairs combine into one
      astral code point, and lone surrogates decode to U+FFFD. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] elsewhere. *)

  val to_float : t -> float option
  (** Numeric view: [Int] and [Float] both convert; everything else is
      [None]. *)
end

(** {1 Histograms} *)

module Hist : sig
  type t
  (** A log-bucketed histogram: quarter-octave buckets (four per power
      of two, ~19% wide) spanning 2{^-120}..2{^56}, plus underflow and
      overflow sinks. Only integer bucket counts and exact min/max are
      stored — no float sum — so {!merge} is exactly associative and
      merged captures are deterministic. *)

  val create : unit -> t

  val add : t -> float -> unit
  (** Record one sample. Non-finite samples are ignored; zero and
      negative samples land in the underflow bucket. *)

  val count : t -> int

  val min_value : t -> float
  (** Smallest recorded sample ([infinity] when empty). *)

  val max_value : t -> float
  (** Largest recorded sample ([neg_infinity] when empty). *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0..100], nearest-rank. The result is
      the geometric midpoint of the selected bucket clamped to the
      observed min/max, so it is within half a bucket width (~9%) of
      the true order statistic. [nan] when empty. *)

  val merge : t -> t -> t
  (** Pure elementwise merge; exactly associative and commutative. *)

  val copy : t -> t
  val to_json : t -> Json.t

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json} (the derived p50/p95/p99 convenience fields
      are recomputed, not parsed). *)
end

(** {1 Global switches} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val tracing : unit -> bool
(** Whether event tracing is armed. Trace events are only recorded when
    both {!enabled} and {!tracing} are true. *)

val set_tracing : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans, counters, histograms, and trace buffers in
    every store (root and workers) and clear the span stacks. The
    enabled/tracing switches are left as they are. *)

val now : unit -> float
(** The wall clock used by the span timers (seconds). *)

(** {1 Spans}

    A span is a named, timed region. Nesting is tracked with a
    per-store stack: entering span ["factor"] inside span ["solve"]
    records under the path ["solve/factor"]. Re-entering a path
    accumulates (total seconds, number of calls), so per-column
    inner-loop spans stay cheap to aggregate. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside the named span. When disabled this is
    exactly [f ()]. Exceptions propagate; the elapsed time is recorded
    either way. When tracing is armed, a begin/end event pair is also
    written to the calling domain's trace track. *)

val record_span : string -> seconds:float -> calls:int -> unit
(** Merge an externally measured aggregate into the span named [name]
    under the current stack prefix — the flush half of the
    read-[enabled]-once pattern for hot loops. No-op when disabled. *)

(** {1 Counters} *)

val count : string -> int -> unit
(** Add to a (stack-prefixed) counter. No-op when disabled. *)

val gauge : string -> float -> unit
(** Set a (stack-prefixed) gauge to an absolute value. No-op when
    disabled. Use this — not {!count} — for values that describe the
    current artifact (sizes, maxima): a counter would sum across
    repeated runs in one capture. *)

val add_absolute : string -> float -> unit
(** Add to a counter addressed by its full path, ignoring the span
    stack. For infrastructure totals (e.g. the [Par] pool's per-slot
    busy times) that must land on one well-known path no matter where
    the flushing code happens to run. No-op when disabled. *)

val observe : string -> float -> unit
(** Record one sample into a (stack-prefixed) latency histogram. No-op
    when disabled. *)

val histogram : string -> Hist.t option
(** Resolve a (stack-prefixed) histogram handle once, for hot loops
    that record per-iteration samples with {!Hist.add} directly.
    [None] when disabled. *)

val trace_counter : string -> float -> unit
(** Emit a counter sample (Chrome [ph:"C"] event) on the calling
    domain's trace track — e.g. a per-iteration residual norm. No-op
    unless both enabled and tracing. *)

(** {1 Worker scopes} *)

val worker_scope : slot:int -> prefix:string -> (unit -> 'a) -> 'a
(** [worker_scope ~slot ~prefix f] runs [f] with the calling domain's
    recording redirected into the worker store for [slot] (created on
    first use), its span stack seeded with [prefix] (the caller's
    current path, so worker-recorded paths line up with the sequential
    run). The previous store binding is restored on exit, exceptions
    included. Used by [Par.parallel_for]; slot [i] surfaces as trace
    track ["domain<i>"]. *)

val current_prefix : unit -> string
(** The innermost open span path of the calling domain's store, [""] at
    top level. This is what [Par] passes to {!worker_scope}. *)

(** {1 Telemetry records} *)

type span_stat = { path : string; seconds : float; calls : int }

type record = {
  meta : (string * Json.t) list;
      (** free-form header: solver, case, n, nnz, iterations, status, ... *)
  spans : span_stat list;  (** first-entered order, hierarchical paths *)
  counters : (string * float) list;  (** first-touched order *)
  hists : (string * Hist.t) list;  (** first-touched order *)
}

val capture : ?meta:(string * Json.t) list -> unit -> record
(** Snapshot the merge of all stores (does not reset). Merge order is
    root store first, then worker slots ascending, so the result is
    deterministic at any domain count. When per-slot busy-time counters
    ([par/busy_s#i]) are present, a derived [par/imbalance] counter
    (max busy / mean busy, 1.0 = perfectly balanced) is appended. *)

val record_to_json : record -> Json.t
(** Schema [powerrchol-telemetry/v2] (v1 plus the ["hists"] object). *)

val record_of_json : Json.t -> (record, string) result
(** Inverse of {!record_to_json}: [record_of_json (record_to_json r) = Ok r]
    for records with finite span times and counter values. Accepts v1
    records (missing ["hists"] defaults to empty). *)

val record_to_text : record -> string
(** Human-readable report: meta lines, then the span tree indented by
    depth, then counters, then histogram percentiles. *)

val pp_record : Format.formatter -> record -> unit

(** {1 Event traces}

    When {!tracing} is armed, spans additionally log timestamped
    begin/end events into a fixed-capacity per-domain ring buffer (one
    Chrome trace track per domain). Begin events reserve room for their
    matching end, so a full buffer drops whole pairs (counted in
    {!Trace.dropped}) and never breaks B/E balance. Timestamps are
    clamped monotonic per track. *)

module Trace : sig
  type event = {
    track : int;  (** 0 = main, [i+1] = parallel chunk [i] *)
    name : string;
    phase : char;  (** 'B' | 'E' | 'C' *)
    ts : float;  (** absolute seconds *)
    value : float;  (** payload for 'C' events *)
  }

  val set_capacity : int -> unit
  (** Capacity (events per track) for buffers created afterwards;
      clamped to at least 256. Default 65536. *)

  val events : unit -> event list
  (** All recorded events, grouped by track, chronological within each
      track. *)

  val dropped : unit -> int
  (** Total events dropped across all tracks due to full buffers. *)

  val to_json : unit -> Json.t
  (** Chrome trace-event JSON (object form): a ["traceEvents"] list
      with process/thread-name metadata, one [tid] per track, [ts] in
      microseconds relative to the first [set_tracing true]. Schema tag
      [powerrchol-trace/v1]. Loadable in Perfetto / chrome://tracing. *)

  val write : string -> unit
  (** Write {!to_json} to a file (compact, one line). *)

  val validate : Json.t -> (string, string) result
  (** Structural well-formedness gate for an emitted trace: every track
      must have balanced B/E events with matching names and
      non-decreasing timestamps, and only phases M/B/E/C/i/I may
      appear. [Ok summary] on success, [Error reason] otherwise. *)
end
