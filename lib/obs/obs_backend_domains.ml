(* Domain-local current-store slot for OCaml >= 5.0.

   Each domain sees its own binding, so a Par worker can point its slot
   at a worker store without the main domain noticing. The initializer
   runs lazily per domain the first time that domain reads the key. *)

type 'a slot = 'a Domain.DLS.key

let make init = Domain.DLS.new_key init
let get = Domain.DLS.get
let set = Domain.DLS.set
let name = "domains"
