type sparsifier = {
  graph : Sddm.Graph.t;
  in_tree : bool array;
  n_tree_edges : int;
  n_recovered : int;
}

(* ---- union-find with path halving + union by rank ---- *)

module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

  let rec find t i =
    let p = t.parent.(i) in
    if p = i then i
    else begin
      t.parent.(i) <- t.parent.(p);
      find t t.parent.(i)
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end;
      true
    end
end

let spanning_tree g =
  let g = Sddm.Graph.coalesce g in
  let n = Sddm.Graph.n_vertices g in
  let m = Sddm.Graph.n_edges g in
  (* Maximum-weight spanning tree. We also evaluated degree-normalized
     effective weights (w / sqrt(W_u W_v)); on power-grid meshes with heavy
     via edges the plain maximum-weight tree yields ~2.5x fewer PCG
     iterations, so it is the default. *)
  let eff = Array.make m 0.0 in
  for e = 0 to m - 1 do
    let _, _, w = Sddm.Graph.edge g e in
    eff.(e) <- w
  done;
  let order = Array.init m (fun e -> e) in
  Array.sort (fun a b -> compare eff.(b) eff.(a)) order;
  let uf = Uf.create n in
  let in_tree = Array.make m false in
  Array.iter
    (fun e ->
      let u, v, _ = Sddm.Graph.edge g e in
      if Uf.union uf u v then in_tree.(e) <- true)
    order;
  in_tree

(* ---- tree-path resistance via binary-lifting LCA ----

   Root every tree component, record depth, ancestor tables and the
   resistance (sum of 1/w) from each vertex to the root; then
   R(u,v) = res(u) + res(v) - 2 res(lca(u,v)). *)

type lca_tables = {
  depth : int array;
  res_to_root : float array;
  up : int array array;  (* up.(k).(v) = 2^k-th ancestor, -1 above roots *)
}

let build_lca g in_tree =
  let n = Sddm.Graph.n_vertices g in
  (* tree adjacency *)
  let deg = Array.make n 0 in
  let m = Sddm.Graph.n_edges g in
  for e = 0 to m - 1 do
    if in_tree.(e) then begin
      let u, v, _ = Sddm.Graph.edge g e in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    end
  done;
  let ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    ptr.(i + 1) <- ptr.(i) + deg.(i)
  done;
  let nbr = Array.make (max ptr.(n) 1) 0 in
  let wgt = Array.make (max ptr.(n) 1) 0.0 in
  let cursor = Array.copy ptr in
  for e = 0 to m - 1 do
    if in_tree.(e) then begin
      let u, v, w = Sddm.Graph.edge g e in
      nbr.(cursor.(u)) <- v;
      wgt.(cursor.(u)) <- w;
      cursor.(u) <- cursor.(u) + 1;
      nbr.(cursor.(v)) <- u;
      wgt.(cursor.(v)) <- w;
      cursor.(v) <- cursor.(v) + 1
    end
  done;
  let depth = Array.make n 0 in
  let res_to_root = Array.make n 0.0 in
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      visited.(root) <- true;
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        for k = ptr.(u) to ptr.(u + 1) - 1 do
          let v = nbr.(k) in
          if not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- u;
            depth.(v) <- depth.(u) + 1;
            res_to_root.(v) <- res_to_root.(u) +. (1.0 /. wgt.(k));
            Queue.add v queue
          end
        done
      done
    end
  done;
  let max_depth = Array.fold_left max 0 depth in
  let levels =
    let rec bits k acc = if 1 lsl k > max_depth then acc else bits (k + 1) (acc + 1) in
    max (bits 0 0) 1
  in
  let up = Array.make levels [||] in
  up.(0) <- parent;
  for k = 1 to levels - 1 do
    let prev = up.(k - 1) in
    up.(k) <-
      Array.init n (fun v -> if prev.(v) < 0 then -1 else prev.(prev.(v)))
  done;
  { depth; res_to_root; up }

let lca tables u v =
  let levels = Array.length tables.up in
  let u = ref u and v = ref v in
  if tables.depth.(!u) < tables.depth.(!v) then begin
    let t = !u in
    u := !v;
    v := t
  end;
  (* lift u to v's depth *)
  let diff = ref (tables.depth.(!u) - tables.depth.(!v)) in
  let k = ref 0 in
  while !diff > 0 do
    if !diff land 1 = 1 then u := tables.up.(!k).(!u);
    diff := !diff lsr 1;
    incr k
  done;
  if !u = !v then !u
  else begin
    for k = levels - 1 downto 0 do
      if tables.up.(k).(!u) <> tables.up.(k).(!v) then begin
        u := tables.up.(k).(!u);
        v := tables.up.(k).(!v)
      end
    done;
    tables.up.(0).(!u)
  end

let stretches g in_tree =
  let g = Sddm.Graph.coalesce g in
  let m = Sddm.Graph.n_edges g in
  assert (Array.length in_tree = m);
  let tables = build_lca g in_tree in
  let out = Array.make m 1.0 in
  for e = 0 to m - 1 do
    if not in_tree.(e) then begin
      let u, v, w = Sddm.Graph.edge g e in
      let a = lca tables u v in
      let r =
        tables.res_to_root.(u) +. tables.res_to_root.(v)
        -. (2.0 *. tables.res_to_root.(a))
      in
      out.(e) <- w *. r
    end
  done;
  out

let sparsify ?(recover_fraction = 0.02) ?(per_vertex_quota = 1) g =
  let g = Sddm.Graph.coalesce g in
  let n = Sddm.Graph.n_vertices g in
  let m = Sddm.Graph.n_edges g in
  let in_tree = spanning_tree g in
  let stretch = stretches g in_tree in
  let off_tree =
    Array.of_seq
      (Seq.filter (fun e -> not in_tree.(e)) (Seq.init m (fun e -> e)))
  in
  (* rank by descending stretch: high-stretch edges are the spectrally
     critical ones *)
  Array.sort (fun a b -> compare stretch.(b) stretch.(a)) off_tree;
  let budget =
    min (Array.length off_tree)
      (int_of_float (recover_fraction *. float_of_int n))
  in
  let quota = Array.make n 0 in
  let recovered = Array.make m false in
  let n_recovered = ref 0 in
  let idx = ref 0 in
  (* first pass: respect per-vertex quotas *)
  while !n_recovered < budget && !idx < Array.length off_tree do
    let e = off_tree.(!idx) in
    incr idx;
    let u, v, _ = Sddm.Graph.edge g e in
    if quota.(u) < per_vertex_quota && quota.(v) < per_vertex_quota then begin
      recovered.(e) <- true;
      quota.(u) <- quota.(u) + 1;
      quota.(v) <- quota.(v) + 1;
      incr n_recovered
    end
  done;
  (* second pass: if quotas left budget unused, take best remaining *)
  idx := 0;
  while !n_recovered < budget && !idx < Array.length off_tree do
    let e = off_tree.(!idx) in
    incr idx;
    if not recovered.(e) then begin
      recovered.(e) <- true;
      incr n_recovered
    end
  done;
  let keep = Array.init m (fun e -> in_tree.(e) || recovered.(e)) in
  let edges = ref [] in
  let n_tree = ref 0 in
  for e = m - 1 downto 0 do
    if keep.(e) then begin
      if in_tree.(e) then incr n_tree;
      edges := Sddm.Graph.edge g e :: !edges
    end
  done;
  {
    graph = Sddm.Graph.create ~n ~edges:(Array.of_list !edges);
    in_tree;
    n_tree_edges = !n_tree;
    n_recovered = !n_recovered;
  }
