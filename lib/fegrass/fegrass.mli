(** feGRASS-style graph spectral sparsification
    [Liu, Yu, Feng, TCAD'22].

    The sparsifier is built in two phases, following the feGRASS recipe:

    + {b Maximum-weight spanning tree}: Kruskal over raw edge weights.
      (A degree-normalized effective weight [w_e / sqrt(W_u * W_v)] was
      also evaluated and lost by ~2.5x in PCG iterations on power grids,
      where the heaviest edges — vias — must be in the tree.)
    + {b Off-tree edge recovery}: off-tree edges are ranked by approximate
      stretch [w_e * R_tree(u,v)] ([R_tree] = tree-path effective
      resistance, computed by binary-lifting LCA over resistance prefix
      sums), and the top [recover_fraction * |V|] are added back. A
      per-vertex quota spreads recovered edges across the graph, standing in
      for feGRASS's similarity-based diversification.

    The sparsifier's Laplacian (plus the original excess diagonal) is then
    factorized — exactly for the feGRASS-PCG baseline [11], or incompletely
    (ICT, drop tolerance 8.5e-6) for the feGRASS-IChol baseline [9]. Those
    compositions live in the [Powerrchol] solver layer; this module is pure
    graph work. *)

type sparsifier = {
  graph : Sddm.Graph.t;  (** tree plus recovered off-tree edges *)
  in_tree : bool array;  (** per input-edge flag (after coalescing) *)
  n_tree_edges : int;
  n_recovered : int;
}

val spanning_tree : Sddm.Graph.t -> bool array
(** [spanning_tree g] marks a maximum-weight spanning forest:
    one flag per edge of [Sddm.Graph.coalesce g]. *)

val stretches : Sddm.Graph.t -> bool array -> float array
(** [stretches g in_tree] returns, for every edge, its approximate stretch
    [w_e * R_tree(u,v)] with respect to the marked forest (tree edges get
    stretch 1 by definition). *)

val sparsify :
  ?recover_fraction:float -> ?per_vertex_quota:int -> Sddm.Graph.t ->
  sparsifier
(** [sparsify g] builds the sparsifier. [recover_fraction] defaults to 0.02
    (the paper recovers 2%·|V| off-tree edges for feGRASS);
    [per_vertex_quota] (default 1) bounds how many recovered edges may touch
    one vertex before lower-ranked candidates are preferred; the tight
    default spreads recovery across the graph and measurably improves
    convergence. *)
