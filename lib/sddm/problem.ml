type t = {
  name : string;
  a : Sparse.Csc.t;
  b : float array;
  graph : Graph.t;
  d : float array;
}

let of_matrix ~name ~a ~b =
  let n_rows, n_cols = Sparse.Csc.dims a in
  assert (n_rows = n_cols);
  assert (Array.length b = n_rows);
  let graph, d = Graph.of_sddm a in
  { name; a; b; graph; d }

let of_graph ~name ~graph ~d ~b =
  assert (Array.length d = Graph.n_vertices graph);
  assert (Array.length b = Graph.n_vertices graph);
  { name; a = Graph.to_sddm graph d; b; graph; d }

let n p = Graph.n_vertices p.graph
let nnz p = Sparse.Csc.nnz p.a

let residual_norm p x =
  let r = Sparse.Vec.sub p.b (Sparse.Csc.spmv p.a x) in
  let bn = Sparse.Vec.norm2 p.b in
  let rn = Sparse.Vec.norm2 r in
  if bn > 0.0 then rn /. bn else rn

let describe p =
  Printf.sprintf "%s: |V|=%d nnz=%d" p.name (n p) (nnz p)
