type t = {
  name : string;
  a : Sparse.Csc.t;
  b : Sparse.Vec.t;
  graph : Graph.t;
  d : float array;
}

let of_matrix ~name ~a ~b =
  let n_rows, n_cols = Sparse.Csc.dims a in
  if n_rows <> n_cols then
    invalid_arg
      (Printf.sprintf "Problem.of_matrix %S: matrix not square (%d x %d)" name
         n_rows n_cols);
  if Sparse.Vec.length b <> n_rows then
    invalid_arg
      (Printf.sprintf
         "Problem.of_matrix %S: rhs length %d does not match matrix \
          dimension %d"
         name (Sparse.Vec.length b) n_rows);
  let graph, d =
    try Graph.of_sddm a
    with Invalid_argument msg ->
      invalid_arg (Printf.sprintf "Problem.of_matrix %S: %s" name msg)
  in
  { name; a; b; graph; d }

let of_graph ~name ~graph ~d ~b =
  let n = Graph.n_vertices graph in
  if Array.length d <> n then
    invalid_arg
      (Printf.sprintf
         "Problem.of_graph %S: excess-diagonal length %d does not match %d \
          vertices"
         name (Array.length d) n);
  if Sparse.Vec.length b <> n then
    invalid_arg
      (Printf.sprintf
         "Problem.of_graph %S: rhs length %d does not match %d vertices" name
         (Sparse.Vec.length b) n);
  { name; a = Graph.to_sddm graph d; b; graph; d }

let n p = Graph.n_vertices p.graph
let nnz p = Sparse.Csc.nnz p.a

let residual_norm_against p ~b x =
  let r = Sparse.Vec.sub b (Sparse.Csc.spmv p.a x) in
  let bn = Sparse.Vec.norm2 b in
  let rn = Sparse.Vec.norm2 r in
  if bn > 0.0 then rn /. bn else rn

let residual_norm p x = residual_norm_against p ~b:p.b x

let describe p =
  Printf.sprintf "%s: |V|=%d nnz=%d" p.name (n p) (nnz p)
