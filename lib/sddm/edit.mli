(** Incremental edits to an SDDM system (the ECO vocabulary).

    An {!t} describes one physical change to a power-grid system: a
    resistor value change, a new resistor, a pad (excess-diagonal) change,
    or a load (right-hand-side) change. A {!state} owns a mutable copy of
    a problem and applies edits to it in place, classifying each edit by
    how much of the prepared solve it invalidates:

    - {!Rhs_changed} — the matrix is untouched; any factorization stays
      valid as-is.
    - {!Edge_changed} / {!Excess_changed} — numeric values moved but the
      sparsity pattern did not; the four stamped CSC entries are patched
      in place, so consumers holding the matrix see the edit immediately,
      and an incremental re-factorization is possible.
    - {!Pattern_grew} — the sparsity pattern changed; the matrix was
      rebuilt and downstream factorizations must be re-prepared.

    The state deep-copies everything at construction: applying edits
    never mutates the problem the caller handed in. *)

type t =
  | Set_conductance of { u : int; v : int; siemens : float }
      (** set the conductance of edge (u,v) to an absolute value;
          [0.] removes the resistor electrically (the pattern keeps the
          slot, so this stays a value-only edit) *)
  | Scale_conductance of { u : int; v : int; factor : float }
      (** multiply the conductance of an existing edge (wire
          strengthening / weakening); the edge must exist *)
  | Add_resistor of { u : int; v : int; siemens : float }
      (** add conductance in parallel; grows the pattern when (u,v) was
          not previously connected *)
  | Set_excess of { node : int; siemens : float }
      (** set the node's excess diagonal (pad conductance) to an
          absolute value *)
  | Set_load of { node : int; amps : float }
      (** set the node's load current (rhs entry) to an absolute value *)

val support : t -> int list
(** The matrix nodes the edit touches; empty for {!Set_load}. *)

val to_string : t -> string

val validate : n:int -> t -> unit
(** Raises [Invalid_argument] for out-of-range nodes, self loops,
    negative or non-finite conductances. *)

(** {1 Mutable edited-matrix state} *)

type state

val of_problem : Problem.t -> state
(** Deep-copy [problem] into an editable state. *)

val problem : state -> Problem.t
(** The current edited problem. Its matrix values are patched in place by
    value-only edits (same physical matrix across such edits); the record
    is replaced wholesale on pattern growth — re-read after any apply
    that returned {!Pattern_grew}. *)

val fresh_problem : state -> Problem.t
(** Rebuild the problem from scratch (fresh graph and matrix, zero-weight
    edges dropped) — exactly what a from-scratch preparation of the
    edited system sees. Deterministic: two states that received the same
    edit sequence produce bit-identical problems. *)

val generation : state -> int
(** Bumped every time the pattern is rebuilt; consumers caching anything
    derived from the matrix pattern must compare generations. *)

val rebuild : state -> Problem.t
(** Like {!fresh_problem}, but the state {e adopts} the rebuilt problem as
    its current one (and bumps the generation): subsequent value-only
    edits patch the returned matrix in place. Used by the full re-prepare
    fallback, whose factorization must see the rebuilt graph while later
    edits must keep reaching the matrix it solves against. *)

type change =
  | No_change  (** the edit was a no-op (value already there) *)
  | Rhs_changed of { node : int }
  | Edge_changed of { u : int; v : int; from_w : float; to_w : float }
      (** value-only; [u < v] *)
  | Excess_changed of { node : int; from_s : float; to_s : float }
  | Pattern_grew of { u : int; v : int; siemens : float }

val apply : state -> t -> change
(** Apply one edit. Raises [Invalid_argument] on an invalid edit (the
    state is unchanged in that case). *)

val apply_all : state -> t list -> change list

val edited_problem : Problem.t -> t list -> Problem.t
(** Pure convenience: copy, apply every edit, rebuild from scratch. The
    reference "what would a from-scratch prepare see" for tests and the
    full re-prepare fallback. *)
