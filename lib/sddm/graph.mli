(** Weighted undirected graphs backing SDDM matrices.

    A graph holds [n] vertices and a multiset of weighted undirected edges
    with strictly positive weights. Parallel edges are allowed at
    construction and coalesced by {!coalesce} (the Laplacian is identical
    either way). Self-loops are rejected. *)

type t

val create : n:int -> edges:(int * int * float) array -> t
(** [create ~n ~edges] validates 0 <= u,v < n, u <> v, w > 0. *)

val of_arrays : n:int -> us:int array -> vs:int array -> ws:float array -> t
(** Zero-copy variant; arrays must have equal lengths and valid contents. *)

val n_vertices : t -> int
val n_edges : t -> int

val edge : t -> int -> int * int * float
(** [edge g e] is the e-th edge as [(u, v, w)] with [u < v]. *)

val iter_edges : t -> (int -> int -> float -> unit) -> unit

val coalesce : t -> t
(** Merge parallel edges by summing weights. *)

(** {1 Adjacency view}

    Built lazily on first use and cached. *)

val degree : t -> int -> int
(** Number of (coalesced) incident edges. *)

val degrees : t -> int array

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors g u f] calls [f v w] for every neighbor (after
    coalescing). *)

val max_incident_weight : t -> float array
(** Per-vertex maximum incident edge weight ([w_max(i)] in Alg. 4);
    0. for isolated vertices. *)

val average_weight : t -> float
(** Mean edge weight ([w_avg] in Alg. 4); 0. for edgeless graphs. *)

val total_weight : t -> float

val connected_components : t -> int array * int
(** [connected_components g] labels every vertex with its component id in
    [0 .. c-1] and returns the count [c]. *)

(** {1 Laplacian / SDDM conversions} *)

val laplacian : t -> Sparse.Csc.t
(** The graph Laplacian [L_G] (Eq. 1 of the paper). *)

val to_sddm : t -> float array -> Sparse.Csc.t
(** [to_sddm g d] is [L_G + diag d]; requires [d] nonnegative of length [n].
    The result is SDDM whenever some [d.(i) > 0] in every component. *)

val of_sddm : Sparse.Csc.t -> t * float array
(** Split a symmetric matrix with nonpositive off-diagonals into
    [(graph, excess_diagonal)] with [A = L_G + diag d]. Raises
    [Invalid_argument] if the matrix is not of that shape (asymmetric
    pattern, positive off-diagonal, or negative excess diagonal beyond a
    relative tolerance; tiny negative round-off is clamped to 0). *)

val is_sddm : Sparse.Csc.t -> bool
(** True when {!of_sddm} would succeed. *)

val permute : t -> Sparse.Perm.t -> t
(** Relabel vertices: vertex [p.(k)] of the input becomes vertex [k]. *)
