type adjacency = {
  ptr : int array;  (* length n+1 *)
  nbr : int array;  (* neighbor vertex per half-edge *)
  wgt : float array;
}

type t = {
  n : int;
  us : int array;  (* us.(e) < vs.(e) *)
  vs : int array;
  ws : float array;
  mutable adj : adjacency option;  (* cache, built from coalesced edges *)
  mutable coalesced : bool;
}

let of_arrays ~n ~us ~vs ~ws =
  let m = Array.length us in
  assert (Array.length vs = m && Array.length ws = m);
  let us' = Array.make m 0 and vs' = Array.make m 0 in
  for e = 0 to m - 1 do
    let u = us.(e) and v = vs.(e) in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph: vertex out of range";
    if u = v then invalid_arg "Graph: self loop";
    if ws.(e) <= 0.0 then invalid_arg "Graph: nonpositive weight";
    if u < v then begin us'.(e) <- u; vs'.(e) <- v end
    else begin us'.(e) <- v; vs'.(e) <- u end
  done;
  { n; us = us'; vs = vs'; ws = Array.copy ws; adj = None; coalesced = false }

let create ~n ~edges =
  let m = Array.length edges in
  let us = Array.make m 0 and vs = Array.make m 0 and ws = Array.make m 0.0 in
  Array.iteri
    (fun e (u, v, w) ->
      us.(e) <- u;
      vs.(e) <- v;
      ws.(e) <- w)
    edges;
  of_arrays ~n ~us ~vs ~ws

let n_vertices g = g.n
let n_edges g = Array.length g.us

let edge g e = (g.us.(e), g.vs.(e), g.ws.(e))

let iter_edges g f =
  for e = 0 to n_edges g - 1 do
    f g.us.(e) g.vs.(e) g.ws.(e)
  done

(* Coalesce parallel edges: sort by (u,v) with a key, then sum runs. *)
let coalesce g =
  if g.coalesced then g
  else begin
    let m = n_edges g in
    let order = Array.init m (fun e -> e) in
    let key e = (g.us.(e), g.vs.(e)) in
    Array.sort (fun a b -> compare (key a) (key b)) order;
    let us = Array.make m 0 and vs = Array.make m 0 and ws = Array.make m 0.0 in
    let out = ref 0 in
    let k = ref 0 in
    while !k < m do
      let e0 = order.(!k) in
      let u = g.us.(e0) and v = g.vs.(e0) in
      let acc = ref 0.0 in
      while !k < m && g.us.(order.(!k)) = u && g.vs.(order.(!k)) = v do
        acc := !acc +. g.ws.(order.(!k));
        incr k
      done;
      us.(!out) <- u;
      vs.(!out) <- v;
      ws.(!out) <- !acc;
      incr out
    done;
    {
      n = g.n;
      us = Array.sub us 0 !out;
      vs = Array.sub vs 0 !out;
      ws = Array.sub ws 0 !out;
      adj = None;
      coalesced = true;
    }
  end

let build_adjacency g =
  let g = coalesce g in
  let n = g.n and m = n_edges g in
  let ptr = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    ptr.(g.us.(e) + 1) <- ptr.(g.us.(e) + 1) + 1;
    ptr.(g.vs.(e) + 1) <- ptr.(g.vs.(e) + 1) + 1
  done;
  for i = 1 to n do
    ptr.(i) <- ptr.(i) + ptr.(i - 1)
  done;
  let nbr = Array.make (max (2 * m) 1) 0 in
  let wgt = Array.make (max (2 * m) 1) 0.0 in
  let cursor = Array.copy ptr in
  for e = 0 to m - 1 do
    let u = g.us.(e) and v = g.vs.(e) and w = g.ws.(e) in
    nbr.(cursor.(u)) <- v;
    wgt.(cursor.(u)) <- w;
    cursor.(u) <- cursor.(u) + 1;
    nbr.(cursor.(v)) <- u;
    wgt.(cursor.(v)) <- w;
    cursor.(v) <- cursor.(v) + 1
  done;
  { ptr; nbr; wgt }

let adjacency g =
  match g.adj with
  | Some a -> a
  | None ->
    let a = build_adjacency g in
    g.adj <- Some a;
    a

let degree g u =
  let a = adjacency g in
  a.ptr.(u + 1) - a.ptr.(u)

let degrees g =
  let a = adjacency g in
  Array.init g.n (fun u -> a.ptr.(u + 1) - a.ptr.(u))

let iter_neighbors g u f =
  let a = adjacency g in
  for k = a.ptr.(u) to a.ptr.(u + 1) - 1 do
    f a.nbr.(k) a.wgt.(k)
  done

let max_incident_weight g =
  let best = Array.make g.n 0.0 in
  iter_edges g (fun u v w ->
      if w > best.(u) then best.(u) <- w;
      if w > best.(v) then best.(v) <- w);
  best

let total_weight g =
  let acc = ref 0.0 in
  iter_edges g (fun _ _ w -> acc := !acc +. w);
  !acc

let average_weight g =
  let m = n_edges g in
  if m = 0 then 0.0 else total_weight g /. float_of_int m

let connected_components g =
  let label = Array.make g.n (-1) in
  let count = ref 0 in
  let stack = Stack.create () in
  for s = 0 to g.n - 1 do
    if label.(s) < 0 then begin
      let c = !count in
      incr count;
      Stack.push s stack;
      label.(s) <- c;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        iter_neighbors g u (fun v _ ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Stack.push v stack
            end)
      done
    end
  done;
  (label, !count)

let laplacian g =
  let t =
    Sparse.Triplet.create
      ~capacity:(max (4 * n_edges g) 1)
      ~n_rows:g.n ~n_cols:g.n ()
  in
  iter_edges g (fun u v w -> Sparse.Triplet.stamp_conductance t u v w);
  Sparse.Csc.of_triplet t

let to_sddm g d =
  assert (Array.length d = g.n);
  Array.iter (fun x -> assert (x >= 0.0)) d;
  let t =
    Sparse.Triplet.create
      ~capacity:(max ((4 * n_edges g) + g.n) 1)
      ~n_rows:g.n ~n_cols:g.n ()
  in
  iter_edges g (fun u v w -> Sparse.Triplet.stamp_conductance t u v w);
  for i = 0 to g.n - 1 do
    (* Stamp the diagonal even when d.(i) = 0 so every vertex appears in the
       matrix pattern, matching circuit-simulator conventions. *)
    Sparse.Triplet.add t i i d.(i)
  done;
  Sparse.Csc.of_triplet t

let split_sddm a =
  let n_rows, n_cols = Sparse.Csc.dims a in
  if n_rows <> n_cols then
    invalid_arg
      (Printf.sprintf "of_sddm: matrix not square (%d rows, %d columns)"
         n_rows n_cols);
  let n = n_rows in
  let edges = ref [] in
  let off_sum = Array.make n 0.0 in
  let diag = Array.make n 0.0 in
  (* Each violation class records its first offender and a running count so
     the error message tells the caller exactly where to look. *)
  let pos_count = ref 0 in
  let pos_first = ref (0, 0, 0.0) in
  let nf_count = ref 0 in
  let nf_first = ref (0, 0, 0.0) in
  Sparse.Csc.fold_nonzeros a ~init:() ~f:(fun () i j v ->
      if not (Float.is_finite v) then begin
        if !nf_count = 0 then nf_first := (i, j, v);
        incr nf_count
      end;
      if i = j then diag.(j) <- v
      else begin
        if v > 0.0 then begin
          if !pos_count = 0 then pos_first := (i, j, v);
          incr pos_count
        end;
        if v < 0.0 then begin
          off_sum.(j) <- off_sum.(j) -. v;
          (* Keep each undirected edge once, from its upper-triangle copy;
             symmetry of the value is checked against the mirror entry. *)
          if i < j then edges := (i, j, -.v) :: !edges
        end
      end);
  if !nf_count > 0 then begin
    let i, j, v = !nf_first in
    invalid_arg
      (Printf.sprintf
         "of_sddm: %d non-finite entr%s (first: A(%d,%d) = %g)"
         !nf_count
         (if !nf_count = 1 then "y" else "ies")
         i j v)
  end;
  if !pos_count > 0 then begin
    let i, j, v = !pos_first in
    invalid_arg
      (Printf.sprintf
         "of_sddm: %d positive off-diagonal entr%s (first: A(%d,%d) = %g); \
          SDDM matrices need nonpositive off-diagonals"
         !pos_count
         (if !pos_count = 1 then "y" else "ies")
         i j v)
  end;
  (* Verify symmetry of the off-diagonal pattern/values. *)
  let asym_count = ref 0 in
  let asym_first = ref (0, 0, 0.0, 0.0) in
  List.iter
    (fun (i, j, w) ->
      let mirror = Sparse.Csc.get a j i in
      let scale = max (Float.abs w) 1.0 in
      if Float.abs (mirror +. w) > 1e-12 *. scale then begin
        if !asym_count = 0 then asym_first := (i, j, -.w, mirror);
        incr asym_count
      end)
    !edges;
  if !asym_count > 0 then begin
    let i, j, aij, aji = !asym_first in
    invalid_arg
      (Printf.sprintf
         "of_sddm: matrix not symmetric at %d entr%s (first: A(%d,%d) = %g \
          but A(%d,%d) = %g)"
         !asym_count
         (if !asym_count = 1 then "y" else "ies")
         i j aij j i aji)
  end;
  let d = Array.make n 0.0 in
  let dom_count = ref 0 in
  let dom_first = ref (0, 0.0, 0.0) in
  for i = 0 to n - 1 do
    let excess = diag.(i) -. off_sum.(i) in
    let scale = max diag.(i) 1.0 in
    if excess < -1e-10 *. scale then begin
      if !dom_count = 0 then dom_first := (i, diag.(i), off_sum.(i));
      incr dom_count
    end;
    d.(i) <- max excess 0.0
  done;
  if !dom_count > 0 then begin
    let i, dg, os = !dom_first in
    invalid_arg
      (Printf.sprintf
         "of_sddm: diagonal dominance lost at %d row%s (first: row %d has \
          diagonal %g < off-diagonal sum %g)"
         !dom_count
         (if !dom_count = 1 then "" else "s")
         i dg os)
  end;
  (create ~n ~edges:(Array.of_list !edges), d)

let of_sddm a = split_sddm a

let is_sddm a =
  match split_sddm a with
  | _ -> true
  | exception Invalid_argument _ -> false

let permute g p =
  assert (Array.length p = g.n);
  let pinv = Sparse.Perm.inverse p in
  let m = n_edges g in
  let us = Array.make m 0 and vs = Array.make m 0 in
  for e = 0 to m - 1 do
    us.(e) <- pinv.(g.us.(e));
    vs.(e) <- pinv.(g.vs.(e))
  done;
  of_arrays ~n:g.n ~us ~vs ~ws:g.ws
