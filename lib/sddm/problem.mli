(** A named SDDM linear system [A x = b], the unit of work every solver and
    benchmark consumes. Keeps both the matrix view and the graph/excess-
    diagonal split, since the randomized factorizations work on the latter. *)

type t = private {
  name : string;
  a : Sparse.Csc.t;
  b : Sparse.Vec.t;
  graph : Graph.t;
  d : float array;  (** excess diagonal: [a = laplacian graph + diag d] *)
}

val of_matrix : name:string -> a:Sparse.Csc.t -> b:Sparse.Vec.t -> t
(** Validates that [a] is SDDM (via {!Graph.of_sddm}) and splits it. On
    invalid input raises [Invalid_argument] with an actionable message
    naming the first offending row/entry and the total violation count
    (e.g. which entry is asymmetric, which row lost diagonal dominance). *)

val of_graph : name:string -> graph:Graph.t -> d:float array -> b:Sparse.Vec.t -> t
(** Builds the matrix from the split; cheaper when the graph is the native
    representation (generators). *)

val n : t -> int
val nnz : t -> int

val residual_norm : t -> Sparse.Vec.t -> float
(** [residual_norm p x] is [||b - A x||_2 / ||b||_2] (absolute norm if
    [b = 0]). *)

val residual_norm_against : t -> b:Sparse.Vec.t -> Sparse.Vec.t -> float
(** Like {!residual_norm} but against a caller-supplied right-hand side —
    the factor-once / solve-many path verifies each RHS against the same
    matrix. *)

val describe : t -> string
(** One-line summary: name, |V|, nnz. *)
