open Sparse.Idx.Ops
module Vec = Sparse.Vec

type t =
  | Set_conductance of { u : int; v : int; siemens : float }
  | Scale_conductance of { u : int; v : int; factor : float }
  | Add_resistor of { u : int; v : int; siemens : float }
  | Set_excess of { node : int; siemens : float }
  | Set_load of { node : int; amps : float }

let support = function
  | Set_conductance { u; v; _ }
  | Scale_conductance { u; v; _ }
  | Add_resistor { u; v; _ } -> [ u; v ]
  | Set_excess { node; _ } -> [ node ]
  | Set_load _ -> []

let to_string = function
  | Set_conductance { u; v; siemens } ->
    Printf.sprintf "set-conductance %d-%d %g" u v siemens
  | Scale_conductance { u; v; factor } ->
    Printf.sprintf "scale-conductance %d-%d %g" u v factor
  | Add_resistor { u; v; siemens } ->
    Printf.sprintf "add-resistor %d-%d %g" u v siemens
  | Set_excess { node; siemens } ->
    Printf.sprintf "set-excess %d %g" node siemens
  | Set_load { node; amps } -> Printf.sprintf "set-load %d %g" node amps

let validate ~n e =
  let node what i =
    if i < 0 || i >= n then
      invalid_arg
        (Printf.sprintf "Edit %s: %s %d out of range [0,%d)" (to_string e)
           what i n)
  in
  let nonneg what x =
    if not (x >= 0.0 && x < infinity) then
      invalid_arg
        (Printf.sprintf "Edit %s: %s %g must be finite and nonnegative"
           (to_string e) what x)
  in
  match e with
  | Set_conductance { u; v; siemens } ->
    node "endpoint" u;
    node "endpoint" v;
    if u = v then invalid_arg (Printf.sprintf "Edit %s: self loop" (to_string e));
    nonneg "conductance" siemens
  | Scale_conductance { u; v; factor } ->
    node "endpoint" u;
    node "endpoint" v;
    if u = v then invalid_arg (Printf.sprintf "Edit %s: self loop" (to_string e));
    nonneg "factor" factor
  | Add_resistor { u; v; siemens } ->
    node "endpoint" u;
    node "endpoint" v;
    if u = v then invalid_arg (Printf.sprintf "Edit %s: self loop" (to_string e));
    nonneg "conductance" siemens;
    if siemens = 0.0 then
      invalid_arg (Printf.sprintf "Edit %s: zero conductance" (to_string e))
  | Set_excess { node = i; siemens } ->
    node "node" i;
    nonneg "conductance" siemens
  | Set_load { node = i; amps } ->
    node "node" i;
    if not (Float.is_finite amps) then
      invalid_arg (Printf.sprintf "Edit %s: non-finite current" (to_string e))

(* ------------------------------------------------------------------ *)
(* Mutable edited-matrix state.

   The state owns deep copies of everything (edge arrays, excess
   diagonal, rhs, and the assembled CSC matrix), so applying edits never
   mutates the problem the caller handed in. Value-only edits patch the
   CSC values in place through its (private but readable) Bigarray
   fields — the pattern never changes, so SpMV-based consumers holding
   the matrix see every edit immediately. Pattern-growing edits rebuild
   the matrix from the edge arrays. *)

type state = {
  n : int;
  name : string;
  mutable us : int array;
  mutable vs : int array;  (* us.(e) < vs.(e) *)
  mutable ws : float array;  (* current weights; edits may zero them *)
  mutable n_edges : int;
  d : float array;  (* current excess diagonal *)
  b : Vec.t;  (* current rhs, patched in place *)
  edge_of : (int * int, int) Hashtbl.t;
  mutable problem : Problem.t;
  mutable generation : int;  (* bumped on every pattern rebuild *)
}

(* Add [dv] to the stored entry A(i,j); false when (i,j) is not in the
   pattern (the caller then rebuilds). Rows are sorted within a column
   (CSC invariant), so a binary search finds the slot. *)
let csc_add a i j dv =
  let col_ptr = a.Sparse.Csc.col_ptr
  and row_idx = a.Sparse.Csc.row_idx
  and values = a.Sparse.Csc.values in
  let lo = ref col_ptr.%(j) and hi = ref (col_ptr.%(j + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = row_idx.%(mid) in
    if r = i then begin
      Vec.set values mid (Vec.get values mid +. dv);
      found := true
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let rebuild_problem st =
  let keep = ref 0 in
  for e = 0 to st.n_edges - 1 do
    if st.ws.(e) > 0.0 then incr keep
  done;
  let us = Array.make (max !keep 1) 0
  and vs = Array.make (max !keep 1) 0
  and ws = Array.make (max !keep 1) 0.0 in
  let out = ref 0 in
  for e = 0 to st.n_edges - 1 do
    if st.ws.(e) > 0.0 then begin
      us.(!out) <- st.us.(e);
      vs.(!out) <- st.vs.(e);
      ws.(!out) <- st.ws.(e);
      incr out
    end
  done;
  let graph =
    Graph.coalesce
      (Graph.of_arrays ~n:st.n ~us:(Array.sub us 0 !keep)
         ~vs:(Array.sub vs 0 !keep) ~ws:(Array.sub ws 0 !keep))
  in
  Problem.of_graph ~name:st.name ~graph ~d:(Array.copy st.d)
    ~b:(Vec.copy st.b)

let of_problem (p : Problem.t) =
  let g = Graph.coalesce p.Problem.graph in
  let m = Graph.n_edges g in
  let us = Array.make (max m 1) 0
  and vs = Array.make (max m 1) 0
  and ws = Array.make (max m 1) 0.0 in
  let edge_of = Hashtbl.create (max m 16) in
  let k = ref 0 in
  Graph.iter_edges g (fun u v w ->
      us.(!k) <- u;
      vs.(!k) <- v;
      ws.(!k) <- w;
      Hashtbl.replace edge_of (u, v) !k;
      incr k);
  let st =
    {
      n = Problem.n p;
      name = p.Problem.name;
      us;
      vs;
      ws;
      n_edges = m;
      d = Array.copy p.Problem.d;
      b = Vec.copy p.Problem.b;
      edge_of;
      problem = p;
      generation = 0;
    }
  in
  (* own a private copy of the assembled matrix so in-place value patches
     cannot leak into the caller's problem *)
  st.problem <- rebuild_problem st;
  st

let problem st = st.problem
let fresh_problem st = rebuild_problem st
let generation st = st.generation

let rebuild st =
  st.problem <- rebuild_problem st;
  st.generation <- st.generation + 1;
  st.problem

type change =
  | No_change
  | Rhs_changed of { node : int }
  | Edge_changed of { u : int; v : int; from_w : float; to_w : float }
  | Excess_changed of { node : int; from_s : float; to_s : float }
  | Pattern_grew of { u : int; v : int; siemens : float }

let grow_edges st u v w =
  if st.n_edges = Array.length st.us then begin
    let cap = max (2 * st.n_edges) 16 in
    let grow a zero =
      let a' = Array.make cap zero in
      Array.blit a 0 a' 0 st.n_edges;
      a'
    in
    st.us <- grow st.us 0;
    st.vs <- grow st.vs 0;
    st.ws <- grow st.ws 0.0
  end;
  st.us.(st.n_edges) <- u;
  st.vs.(st.n_edges) <- v;
  st.ws.(st.n_edges) <- w;
  Hashtbl.replace st.edge_of (u, v) st.n_edges;
  st.n_edges <- st.n_edges + 1

(* Apply one edge-weight delta both to the edge array and, in place, to
   the four stamped CSC entries. When any of the four entries is missing
   from the pattern (the edge was zeroed before an earlier rebuild
   dropped it), the matrix is rebuilt and the change is reported as
   pattern growth. *)
let edge_delta st u v slot dw =
  let from_w = st.ws.(slot) in
  let to_w = from_w +. dw in
  st.ws.(slot) <- to_w;
  let a = st.problem.Problem.a in
  let ok =
    csc_add a u v (-.dw) && csc_add a v u (-.dw)
    && csc_add a u u dw && csc_add a v v dw
  in
  if ok then Edge_changed { u; v; from_w; to_w }
  else begin
    st.problem <- rebuild_problem st;
    st.generation <- st.generation + 1;
    Pattern_grew { u; v; siemens = to_w }
  end

let apply st e =
  validate ~n:st.n e;
  let canon u v = if u < v then (u, v) else (v, u) in
  match e with
  | Set_load { node; amps } ->
    let cur = st.b.{node} in
    if cur = amps then No_change
    else begin
      st.b.{node} <- amps;
      st.problem.Problem.b.{node} <- amps;
      Rhs_changed { node }
    end
  | Set_excess { node; siemens } ->
    let from_s = st.d.(node) in
    if from_s = siemens then No_change
    else begin
      st.d.(node) <- siemens;
      st.problem.Problem.d.(node) <- siemens;
      let found = csc_add st.problem.Problem.a node node (siemens -. from_s) in
      (* to_sddm stamps every diagonal, even zeros, so the slot exists *)
      assert found;
      Excess_changed { node; from_s; to_s = siemens }
    end
  | Set_conductance { u; v; siemens } -> (
    let u, v = canon u v in
    match Hashtbl.find_opt st.edge_of (u, v) with
    | Some slot ->
      let dw = siemens -. st.ws.(slot) in
      if dw = 0.0 then No_change else edge_delta st u v slot dw
    | None ->
      if siemens = 0.0 then No_change
      else begin
        grow_edges st u v siemens;
        st.problem <- rebuild_problem st;
        st.generation <- st.generation + 1;
        Pattern_grew { u; v; siemens }
      end)
  | Scale_conductance { u; v; factor } -> (
    let u, v = canon u v in
    match Hashtbl.find_opt st.edge_of (u, v) with
    | Some slot ->
      let dw = (factor -. 1.0) *. st.ws.(slot) in
      if dw = 0.0 then No_change else edge_delta st u v slot dw
    | None ->
      invalid_arg
        (Printf.sprintf "Edit %s: edge not present" (to_string e)))
  | Add_resistor { u; v; siemens } -> (
    let u, v = canon u v in
    match Hashtbl.find_opt st.edge_of (u, v) with
    | Some slot -> edge_delta st u v slot siemens
    | None ->
      grow_edges st u v siemens;
      st.problem <- rebuild_problem st;
      st.generation <- st.generation + 1;
      Pattern_grew { u; v; siemens })

let apply_all st edits = List.map (apply st) edits

let edited_problem p edits =
  let st = of_problem p in
  List.iter (fun e -> ignore (apply st e)) edits;
  rebuild_problem st
