(** Adjoint sensitivity of IR drop to conductance changes.

    For the drop system [A x = b] ([A = L_G + D]) and a scalar objective
    [phi = c^T x] (e.g. the drop at the worst node, or total weighted
    drop), the adjoint method gives the gradient with respect to every
    edge conductance with {e one} extra solve:

    [A lambda = c], then for edge (u,v):
    [d phi / d w_uv = -(x_u - x_v) (lambda_u - lambda_v)],
    and for a pad conductance at node u: [d phi / d d_u = -x_u lambda_u].

    This is the workhorse of power-grid optimization (wire widening, pad
    placement): one PowerRChol-preconditioned solve prices every possible
    fix at once. Both solves share the same preconditioner. *)

type gradient = {
  d_edges : float array;  (** per coalesced edge of the problem graph *)
  d_pads : float array;  (** per node: sensitivity to its excess diagonal *)
  objective : float;  (** phi = c^T x at the current design *)
}

val of_objective :
  ?rtol:float -> ?seed:int -> Sddm.Problem.t -> c:Sparse.Vec.t -> gradient
(** [of_objective p ~c] computes phi = c^T x and its gradient. *)

val worst_node_drop :
  ?rtol:float -> ?seed:int -> Sddm.Problem.t -> int * gradient
(** Solves, finds the worst-drop node [w], and returns [(w, gradient)] for
    the objective [x_w]. *)

val most_critical_edges : Sddm.Problem.t -> gradient -> int -> (int * int * float * float) list
(** [most_critical_edges p g k] lists the [k] edges whose conductance
    increase reduces the objective fastest: [(u, v, weight, dphi_dw)] with
    the most negative derivatives first. *)
