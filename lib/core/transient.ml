type t = {
  session : Engine.Session.t;
      (* owns the shifted system G + C/h (b = DC loads), its updatable
         factorization, and the PCG workspace; grid edits between marches
         go through the session's incremental update rungs *)
  cap_over_h : float array;
  b_dc : Sparse.Vec.t;
  h : float;
  t_prepare : float;
  rtol : float;
}

(* The current shifted problem: re-read per use, because a pattern-growing
   edit replaces the session's problem record wholesale. *)
let problem t = Engine.Session.problem t.session

type step_stats = {
  time : float;
  iterations : int;
  max_drop : float;
  mean_drop : float;
}

type result = {
  steps : step_stats array;
  v_final : Sparse.Vec.t;
  peak_drop : float;
  peak_time : float;
  total_iterations : int;
  t_prepare : float;
  t_march : float;
}

let prepare ?(rtol = 1e-6) ?(seed = Solver.default_seed)
    ~(circuit : Powergrid.Generate.circuit) ~h () =
  if h <= 0.0 then invalid_arg "Transient.prepare: nonpositive step";
  if Array.length circuit.Powergrid.Generate.caps = 0 then
    invalid_arg "Transient.prepare: circuit has no capacitance";
  let t0 = Unix.gettimeofday () in
  let dc =
    Powergrid.Generate.circuit_to_problem ~name:"transient-dc" circuit
  in
  let n = Sddm.Problem.n dc in
  let cap_over_h = Array.make n 0.0 in
  Array.iter
    (fun (node, farads) ->
      cap_over_h.(node) <- cap_over_h.(node) +. (farads /. h))
    circuit.Powergrid.Generate.caps;
  (* shifted SDDM: same graph, excess diagonal grows by C/h *)
  let d_shifted =
    Array.mapi (fun i di -> di +. cap_over_h.(i)) dc.Sddm.Problem.d
  in
  let problem =
    Sddm.Problem.of_graph ~name:"transient-be" ~graph:dc.Sddm.Problem.graph
      ~d:d_shifted ~b:dc.Sddm.Problem.b
  in
  (* one-time PowerRChol preparation on the shifted matrix, as a versioned
     session so grid edits between marches re-validate incrementally
     instead of re-preparing from scratch *)
  let session = Engine.Session.create ~seed problem in
  {
    session;
    cap_over_h;
    b_dc = dc.Sddm.Problem.b;
    h;
    t_prepare = Unix.gettimeofday () -. t0;
    rtol;
  }

let update t edits = Engine.Session.update t.session edits

let dc_drop t =
  let dc_problem = problem t in
  (* solve G v = b: the unshifted system; rebuild it from the shifted one
     by removing C/h from the excess diagonal *)
  let d =
    Array.mapi
      (fun i di -> di -. t.cap_over_h.(i))
      dc_problem.Sddm.Problem.d
  in
  let g_problem =
    Sddm.Problem.of_graph ~name:"transient-dc" ~graph:dc_problem.Sddm.Problem.graph
      ~d ~b:t.b_dc
  in
  let r = Pipeline.solve ~rtol:t.rtol g_problem in
  r.Solver.x

let simulate t ~steps ~waveform =
  assert (steps > 0);
  (* capture the session's current preparation and matrix once per march:
     updates between marches are picked up here, updates mid-march are
     not a supported interleaving (the library is single-threaded) *)
  let prepared = Engine.Session.prepared t.session in
  let be_problem = problem t in
  let n = Sddm.Problem.n be_problem in
  let a = be_problem.Sddm.Problem.a in
  let v = Sparse.Vec.create n in
  let rhs = Sparse.Vec.create n in
  let stats = ref [] in
  let total_iterations = ref 0 in
  let peak_drop = ref 0.0 in
  let peak_time = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  for k = 1 to steps do
    let time = float_of_int k *. t.h in
    let scale = waveform time in
    let b_dc = t.b_dc in
    for i = 0 to n - 1 do
      rhs.{i} <- (scale *. b_dc.{i}) +. (t.cap_over_h.(i) *. v.{i})
    done;
    (* in-place solve: [v] is both the warm start and the output buffer,
       and the handle's workspace supplies the r/z/p/q iteration vectors —
       the march allocates no n-sized arrays per step *)
    let res =
      Krylov.Pcg.solve_into ~rtol:t.rtol ~warm_start:true
        ~workspace:prepared.Solver.workspace ~x:v ~a ~b:rhs
        ~precond:prepared.Solver.precond ()
    in
    assert (res.Krylov.Pcg.x == v);
    total_iterations := !total_iterations + res.Krylov.Pcg.iterations;
    let max_drop = Sparse.Vec.norm_inf v in
    if max_drop > !peak_drop then begin
      peak_drop := max_drop;
      peak_time := time
    end;
    stats :=
      {
        time;
        iterations = res.Krylov.Pcg.iterations;
        max_drop;
        mean_drop = Sparse.Vec.mean v;
      }
      :: !stats
  done;
  {
    steps = Array.of_list (List.rev !stats);
    v_final = v;
    peak_drop = !peak_drop;
    peak_time = !peak_time;
    total_iterations = !total_iterations;
    t_prepare = t.t_prepare;
    t_march = Unix.gettimeofday () -. t0;
  }

module Waveform = struct
  let step time = if time >= 0.0 then 1.0 else 0.0

  let pulse ~period ~duty time =
    assert (period > 0.0 && duty >= 0.0 && duty <= 1.0);
    let phase = Float.rem time period /. period in
    if phase < duty then 1.0 else 0.0

  let ramp ~rise time =
    assert (rise > 0.0);
    if time <= 0.0 then 0.0 else if time >= rise then 1.0 else time /. rise
end
