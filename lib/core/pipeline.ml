(* Preparations route through the Engine cache: repeated solves of the
   same system (or a solve_many after a solve) reuse one reordering +
   factorization. The result restores full-cost semantics — the handle's
   preparation times are folded back in so the phase-timing tables stay
   honest even when the preparation was cached. *)
let restore_prepare_cost (prepared : Solver.prepared) (r : Solver.result) =
  {
    r with
    Solver.t_reorder = prepared.Solver.t_reorder;
    t_precond = prepared.Solver.t_precond;
    t_total =
      prepared.Solver.t_reorder +. prepared.Solver.t_precond
      +. r.Solver.t_iterate;
  }

let solve ?rtol ?max_iter ?seed ?buckets ?heavy_factor problem =
  let prepared = Engine.powerrchol ?buckets ?heavy_factor ?seed problem in
  (* pass b explicitly: the cached handle may have been prepared from an
     equal-matrix problem with a different right-hand side *)
  restore_prepare_cost prepared
    (Solver.solve_prepared ?rtol ?max_iter ~b:problem.Sddm.Problem.b prepared)

let solve_many ?rtol ?max_iter ?seed ?buckets ?heavy_factor problem bs =
  let prepared = Engine.powerrchol ?buckets ?heavy_factor ?seed problem in
  (prepared, Solver.solve_many ?rtol ?max_iter prepared bs)

let open_session ?seed ?buckets ?heavy_factor problem =
  Engine.Session.create ?seed ?buckets ?heavy_factor problem

let resolve ?rtol ?max_iter session edits =
  let report = Engine.Session.update session edits in
  (report, Engine.Session.solve ?rtol ?max_iter session)

let solve_profiled ?rtol ?max_iter ?seed ?buckets ?heavy_factor problem =
  let solver = Solver.powerrchol ?buckets ?heavy_factor ?seed () in
  Solver.run_profiled ?rtol ?max_iter solver problem

let solve_matrix ?rtol ?max_iter ?seed ?(name = "matrix") ~a ~b () =
  let problem = Sddm.Problem.of_matrix ~name ~a ~b in
  solve ?rtol ?max_iter ?seed problem

let solve_robust ?rtol ?max_iter ?seed ?retries problem =
  Solver.solve_robust ?rtol ?max_iter ?seed ?retries problem

let solve_matrix_robust ?rtol ?max_iter ?seed ?retries ?(name = "matrix") ~a
    ~b () =
  (* Diagnose the raw pair BEFORE validation so corrupted input yields the
     structured report instead of an exception out of [Problem.of_matrix]. *)
  let diagnostics = Robust.Diagnose.run ~a ~b in
  if Robust.Diagnose.has_fatal diagnostics then
    {
      Solver.diagnostics;
      outcome =
        Solver.Robust_rejected
          {
            reasons =
              List.map Robust.Diagnose.issue_to_string
                (Robust.Diagnose.fatal_issues diagnostics);
          };
    }
  else
    match Sddm.Problem.of_matrix ~name ~a ~b with
    | problem -> Solver.solve_robust ?rtol ?max_iter ?seed ?retries problem
    | exception Invalid_argument msg ->
      (* diagnostics missed what validation caught: still a structured
         rejection, with the validator's message as the reason *)
      {
        Solver.diagnostics;
        outcome = Solver.Robust_rejected { reasons = [ msg ] };
      }

let solve_matrix_robust_profiled ?rtol ?max_iter ?seed ?retries
    ?(name = "matrix") ~a ~b () =
  let _, n = Sparse.Csc.dims a in
  Solver.with_obs
    ~meta_of:(Solver.robust_meta_of ~case:name ~n ~nnz:(Sparse.Csc.nnz a))
    (fun () -> solve_matrix_robust ?rtol ?max_iter ?seed ?retries ~name ~a ~b ())

let pp_result fmt (r : Solver.result) =
  Format.fprintf fmt
    "@[<v>solver     : %s@,converged  : %b (%d iterations, residual %.3e)@,\
     status     : %s@,\
     reordering : %.3f s@,factorize  : %.3f s (factor nnz %d)@,\
     iteration  : %.3f s@,total      : %.3f s@]"
    r.Solver.solver r.Solver.converged r.Solver.iterations r.Solver.residual
    (Krylov.Pcg.status_to_string r.Solver.status)
    r.Solver.t_reorder r.Solver.t_precond r.Solver.factor_nnz
    r.Solver.t_iterate r.Solver.t_total

let pp_robust fmt (r : Solver.robust_result) =
  Format.fprintf fmt "@[<v>%a@," Robust.Diagnose.pp_report
    r.Solver.diagnostics;
  let attempts_block attempts =
    List.iter
      (fun (a : Robust.Fallback.attempt) ->
        Format.fprintf fmt "  ✗ %s: %s@," a.Robust.Fallback.rung
          (Robust.Fallback.failure_to_string a.Robust.Fallback.failure))
      attempts
  in
  (match r.Solver.outcome with
   | Solver.Robust_solved { winner; iterations; residual; attempts; _ } ->
     attempts_block attempts;
     Format.fprintf fmt
       "  ✓ recovered by %s: %d iterations, verified residual %.3e" winner
       iterations residual
   | Solver.Robust_rejected { reasons } ->
     Format.fprintf fmt "rejected by pre-flight diagnostics:@,";
     List.iter (fun m -> Format.fprintf fmt "  ✗ %s@," m) reasons
   | Solver.Robust_exhausted { attempts } ->
     attempts_block attempts;
     Format.fprintf fmt "  ✗ fallback chain exhausted");
  Format.fprintf fmt "@]"
