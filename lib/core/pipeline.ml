let solve ?rtol ?max_iter ?seed ?buckets ?heavy_factor problem =
  let solver = Solver.powerrchol ?buckets ?heavy_factor ?seed () in
  Solver.run ?rtol ?max_iter solver problem

let solve_matrix ?rtol ?max_iter ?seed ?(name = "matrix") ~a ~b () =
  let problem = Sddm.Problem.of_matrix ~name ~a ~b in
  solve ?rtol ?max_iter ?seed problem

let pp_result fmt (r : Solver.result) =
  Format.fprintf fmt
    "@[<v>solver     : %s@,converged  : %b (%d iterations, residual %.3e)@,\
     reordering : %.3f s@,factorize  : %.3f s (factor nnz %d)@,\
     iteration  : %.3f s@,total      : %.3f s@]"
    r.Solver.solver r.Solver.converged r.Solver.iterations r.Solver.residual
    r.Solver.t_reorder r.Solver.t_precond r.Solver.factor_nnz
    r.Solver.t_iterate r.Solver.t_total
