let is_sdd a =
  let n_rows, n_cols = Sparse.Csc.dims a in
  if n_rows <> n_cols then false
  else if not (Sparse.Csc.symmetrize_check a) then false
  else begin
    let n = n_cols in
    let off = Array.make n 0.0 in
    let diag = Array.make n 0.0 in
    Sparse.Csc.fold_nonzeros a ~init:() ~f:(fun () i j v ->
        if i = j then diag.(j) <- v
        else off.(j) <- off.(j) +. Float.abs v);
    let ok = ref true in
    for i = 0 to n - 1 do
      let scale = Float.max diag.(i) 1.0 in
      if diag.(i) < off.(i) -. (1e-12 *. scale) then ok := false
    done;
    !ok
  end

(* Doubled system: index i is node i, index n+i its mirror i'. *)
let reduce a ~b =
  if not (is_sdd a) then invalid_arg "Sdd.reduce: matrix is not SDD";
  let _, n = Sparse.Csc.dims a in
  assert (Sparse.Vec.length b = n);
  let edges = ref [] in
  let off_abs = Array.make n 0.0 in
  let diag = Array.make n 0.0 in
  Sparse.Csc.fold_nonzeros a ~init:() ~f:(fun () i j v ->
      if i = j then diag.(j) <- v
      else begin
        off_abs.(j) <- off_abs.(j) +. Float.abs v;
        if i < j then
          if v < 0.0 then begin
            (* ordinary SDDM edge, duplicated on the mirror side *)
            edges := (i, j, -.v) :: (n + i, n + j, -.v) :: !edges
          end
          else if v > 0.0 then begin
            (* positive coupling crosses to the mirror *)
            edges := (i, n + j, v) :: (j, n + i, v) :: !edges
          end
      end);
  let d = Array.make (2 * n) 0.0 in
  for i = 0 to n - 1 do
    let excess = Float.max (diag.(i) -. off_abs.(i)) 0.0 in
    d.(i) <- excess;
    d.(n + i) <- excess
  done;
  let graph =
    Sddm.Graph.create ~n:(2 * n) ~edges:(Array.of_list !edges)
  in
  let bb =
    Sparse.Vec.init (2 * n) (fun i ->
        if i < n then Sparse.Vec.get b i else -.Sparse.Vec.get b (i - n))
  in
  Sddm.Problem.of_graph ~name:"sdd-doubled" ~graph ~d ~b:bb

let recover (y : Sparse.Vec.t) =
  let n2 = Sparse.Vec.length y in
  assert (n2 mod 2 = 0);
  let n = n2 / 2 in
  Sparse.Vec.init n (fun i -> (y.{i} -. y.{n + i}) /. 2.0)

let solve ?rtol ?seed ~a ~b () =
  let doubled = reduce a ~b in
  let result = Pipeline.solve ?rtol ?seed doubled in
  (recover result.Solver.x, result)
