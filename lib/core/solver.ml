type prepared = {
  solver_name : string;
  problem : Sddm.Problem.t;
  precond : Krylov.Precond.t;
  workspace : Krylov.Pcg.Workspace.t;
  t_reorder : float;
  t_precond : float;
  factor_nnz : int;
}

type t = {
  name : string;
  prepare : Sddm.Problem.t -> prepared;
}

type result = {
  solver : string;
  x : Sparse.Vec.t;
  iterations : int;
  status : Krylov.Pcg.status;
  converged : bool;
  residual : float;
  t_reorder : float;
  t_precond : float;
  t_iterate : float;
  t_total : float;
  factor_nnz : int;
}

let default_seed = 20240623

let now = Unix.gettimeofday

(* Telemetry helper: every prepare ends here so the preconditioner size
   ratio lands in the record regardless of which solver ran. *)
let note_prepared problem (p : prepared) =
  if Obs.enabled () then
    Obs.gauge "precond_nnz_ratio"
      (float_of_int p.factor_nnz
      /. float_of_int (max 1 (Sddm.Problem.nnz problem)));
  p

let make_prepared ~solver_name problem ~precond ~t_reorder ~t_precond
    ~factor_nnz =
  note_prepared problem
    {
      solver_name;
      problem;
      precond;
      workspace = Krylov.Pcg.Workspace.create (Sddm.Problem.n problem);
      t_reorder;
      t_precond;
      factor_nnz;
    }

let prepare solver problem =
  Obs.span "prepare" (fun () -> solver.prepare problem)

let solve_prepared_ws ?rtol ?(max_iter = 500) ?deadline ?x0 ?(history = false)
    ?(condition = false) ?b ~workspace (p : prepared) =
  let problem = p.problem in
  let n = Sddm.Problem.n problem in
  let b = match b with Some b -> b | None -> problem.Sddm.Problem.b in
  if Sparse.Vec.length b <> n then
    invalid_arg
      (Printf.sprintf
         "Solver.solve_prepared: rhs length %d, system dimension %d"
         (Sparse.Vec.length b) n);
  let x, warm_start =
    match x0 with
    | Some v ->
      if Sparse.Vec.length v <> n then
        invalid_arg
          (Printf.sprintf
             "Solver.solve_prepared: x0 length %d, system dimension %d"
             (Sparse.Vec.length v) n);
      (Sparse.Vec.copy v, true)
    | None -> (Sparse.Vec.create n, false)
  in
  let t0 = now () in
  let pcg =
    Obs.span "pcg" (fun () ->
        Krylov.Pcg.solve_into ?rtol ~max_iter ?deadline ~history ~condition
          ~warm_start ~workspace ~x ~a:problem.Sddm.Problem.a ~b
          ~precond:p.precond ())
  in
  let t_iterate = now () -. t0 in
  {
    solver = p.solver_name;
    x = pcg.Krylov.Pcg.x;
    iterations = pcg.Krylov.Pcg.iterations;
    status = pcg.Krylov.Pcg.status;
    converged = pcg.Krylov.Pcg.converged;
    residual = Sddm.Problem.residual_norm_against problem ~b pcg.Krylov.Pcg.x;
    (* marginal-cost semantics: the preparation was paid once and lives on
       the handle, so a prepared solve reports zero reorder/factor time
       and t_total = t_iterate. Summing many solve_prepared results plus
       one (t_reorder + t_precond) from the handle gives the honest
       amortized total. *)
    t_reorder = 0.0;
    t_precond = 0.0;
    t_iterate;
    t_total = t_iterate;
    factor_nnz = p.factor_nnz;
  }

let solve_prepared ?rtol ?max_iter ?deadline ?x0 ?history ?condition ?b
    (p : prepared) =
  solve_prepared_ws ?rtol ?max_iter ?deadline ?x0 ?history ?condition ?b
    ~workspace:p.workspace p

let solve_many ?rtol ?max_iter ?deadline ?history ?condition (p : prepared) bs
    =
  let pool = Par.default () in
  let nb = Array.length bs in
  let obs = Obs.enabled () in
  (* Each solve runs in its own "solve#k" span (k = global batch index)
     and logs its wall time into the "solve_seconds" latency histogram.
     On the parallel path the spans land in per-chunk Obs worker stores
     (see Par.parallel_for), which Obs.capture merges deterministically —
     since every solve#k path is unique, merged counter totals are
     bit-identical to the sequential run at any domain count. *)
  let solve_one ~workspace k b =
    let t0 = if obs then Obs.now () else 0.0 in
    let r =
      Obs.span
        (Printf.sprintf "solve#%d" k)
        (fun () ->
          solve_prepared_ws ?rtol ?max_iter ?deadline ?history ?condition ~b
            ~workspace p)
    in
    if obs then Obs.observe "solve_seconds" (Obs.now () -. t0);
    r
  in
  Obs.span "solve_many" (fun () ->
      if nb <= 1 || not (Par.runs_parallel pool) then
        Array.mapi (fun k b -> solve_one ~workspace:p.workspace k b) bs
      else begin
        (* Fan the batch across the pool, one contiguous chunk of
           right-hand sides per domain. Each chunk gets its own PCG
           workspace (the handle's single workspace serves one solve at
           a time), and the pool is busy for the region's duration so
           every solve's inner kernels run sequentially — which makes
           the batch results bit-identical to the sequential path at any
           domain count. *)
        let n = Sddm.Problem.n p.problem in
        let results = Array.make nb None in
        Par.parallel_for pool ~lo:0 ~hi:nb (fun lo hi ->
            let workspace = Krylov.Pcg.Workspace.create n in
            for k = lo to hi - 1 do
              results.(k) <- Some (solve_one ~workspace k bs.(k))
            done);
        Array.map (function Some r -> r | None -> assert false) results
      end)

let iterate ?rtol ?(max_iter = 500) ?deadline solver prepared problem =
  let n = Sddm.Problem.n problem in
  let t0 = now () in
  let pcg =
    Obs.span "pcg" (fun () ->
        Krylov.Pcg.solve_into ?rtol ~max_iter ?deadline ~history:true
          ~condition:true ~warm_start:false ~workspace:prepared.workspace
          ~x:(Sparse.Vec.create n) ~a:problem.Sddm.Problem.a
          ~b:problem.Sddm.Problem.b ~precond:prepared.precond ())
  in
  let t_iterate = now () -. t0 in
  {
    solver = solver.name;
    x = pcg.Krylov.Pcg.x;
    iterations = pcg.Krylov.Pcg.iterations;
    status = pcg.Krylov.Pcg.status;
    converged = pcg.Krylov.Pcg.converged;
    residual = Sddm.Problem.residual_norm problem pcg.Krylov.Pcg.x;
    t_reorder = prepared.t_reorder;
    t_precond = prepared.t_precond;
    t_iterate;
    t_total = prepared.t_reorder +. prepared.t_precond +. t_iterate;
    factor_nnz = prepared.factor_nnz;
  }

let run ?rtol ?max_iter ?deadline solver problem =
  iterate ?rtol ?max_iter ?deadline solver (solver.prepare problem) problem

(* ---- orderings ---- *)

type ordering =
  | Amd
  | Natural
  | Degree_sort
  | Rcm
  | Nested_dissection
  | Partitioned

let ordering_name = function
  | Amd -> "amd"
  | Natural -> "natural"
  | Degree_sort -> "alg4"
  | Rcm -> "rcm"
  | Nested_dissection -> "nd"
  | Partitioned -> "part"

let apply_ordering ordering g =
  match ordering with
  | Amd -> Ordering.Amd.order g
  | Natural -> Ordering.Natural.order g
  | Degree_sort -> Ordering.Degree_sort.order g
  | Rcm -> Ordering.Rcm.order g
  | Nested_dissection -> Ordering.Nested_dissection.order g
  | Partitioned -> Ordering.Partitioned.order g

(* ---- randomized-Cholesky solvers ---- *)

let rand_chol_custom ~name ~sort ~sampling ~ordering ?(seed = default_seed)
    () =
  let prepare problem =
    let g = problem.Sddm.Problem.graph in
    let t0 = now () in
    let perm = Obs.span "reorder" (fun () -> apply_ordering ordering g) in
    let t1 = now () in
    let l =
      Obs.span "factor" (fun () ->
          let gp = Sddm.Graph.permute g perm in
          let d = problem.Sddm.Problem.d in
          let dp = Array.init (Array.length perm) (fun k -> d.(perm.(k))) in
          let rng = Rng.create seed in
          Factor.Rand_chol.factorize ~sort ~sampling ~rng gp ~d:dp)
    in
    let t2 = now () in
    make_prepared ~solver_name:name problem
      ~precond:(Krylov.Precond.of_factor ~name ~perm l)
      ~t_reorder:(t1 -. t0) ~t_precond:(t2 -. t1)
      ~factor_nnz:(Factor.Lower.nnz l)
  in
  { name; prepare }

let rchol ?(ordering = Amd) ?seed () =
  rand_chol_custom
    ~name:(Printf.sprintf "rchol(%s)" (ordering_name ordering))
    ~sort:Factor.Rand_chol.Exact_sort ~sampling:Factor.Rand_chol.Per_neighbor
    ~ordering ?seed ()

let lt_rchol ?(ordering = Amd) ?(buckets = Factor.Lt_rchol.default_buckets)
    ?seed () =
  rand_chol_custom
    ~name:(Printf.sprintf "lt-rchol(%s)" (ordering_name ordering))
    ~sort:(Factor.Rand_chol.Counting_sort { buckets })
    ~sampling:Factor.Rand_chol.Shared_random ~ordering ?seed ()

let default_heavy_factor = 10.0

(* The paper's preparation with an optional precomputed Alg. 4
   permutation: reordering is deterministic and seed-independent, so a
   caller holding the permutation (the robust reseed rungs) skips straight
   to the factorization. *)
let powerrchol_prepare ?(buckets = Factor.Lt_rchol.default_buckets)
    ?(heavy_factor = default_heavy_factor) ?(seed = default_seed) ?perm
    problem =
  let g = problem.Sddm.Problem.graph in
  let t0 = now () in
  let perm, t_reorder =
    match perm with
    | Some perm -> (perm, 0.0)
    | None ->
      (* Partitioned = recursive bisection with Alg. 4 degree sort inside
         each block: same local fill behavior as plain Alg. 4, but the
         elimination tree gains independent branches so the multicore
         factorization has subtrees to schedule (DESIGN.md §15). *)
      let perm =
        Obs.span "reorder" (fun () ->
            Ordering.Partitioned.order ~heavy_factor g)
      in
      (perm, now () -. t0)
  in
  let t1 = now () in
  let l =
    Obs.span "factor" (fun () ->
        let gp = Sddm.Graph.permute g perm in
        let d = problem.Sddm.Problem.d in
        let dp = Array.init (Array.length perm) (fun k -> d.(perm.(k))) in
        let rng = Rng.create seed in
        Factor.Lt_rchol.factorize ~buckets ~rng gp ~d:dp)
  in
  let t2 = now () in
  make_prepared ~solver_name:"powerrchol" problem
    ~precond:(Krylov.Precond.of_factor ~name:"powerrchol" ~perm l)
    ~t_reorder ~t_precond:(t2 -. t1) ~factor_nnz:(Factor.Lower.nnz l)

let powerrchol ?buckets ?heavy_factor ?seed () =
  {
    name = "powerrchol";
    prepare =
      (fun problem -> powerrchol_prepare ?buckets ?heavy_factor ?seed problem);
  }

(* ---- feGRASS solvers ---- *)

let fegrass_prepare ~name ~recover_fraction ~factorize problem =
  let t0 = now () in
  let sp, sparsifier_a =
    Obs.span "factor" (fun () ->
        let sp =
          Fegrass.sparsify ~recover_fraction problem.Sddm.Problem.graph
        in
        (sp, Sddm.Graph.to_sddm sp.Fegrass.graph problem.Sddm.Problem.d))
  in
  let t1 = now () in
  (* The sparsifier is near-tree; AMD keeps its exact factor sparse. The
     reordering time is charged to t_reorder like the paper's tables. *)
  let perm = Obs.span "reorder" (fun () -> Ordering.Amd.order sp.Fegrass.graph) in
  let t2 = now () in
  let l =
    Obs.span "factor" (fun () ->
        factorize (Sparse.Csc.permute_sym sparsifier_a perm))
  in
  let t3 = now () in
  make_prepared ~solver_name:name problem
    ~precond:(Krylov.Precond.of_factor ~name:"fegrass" ~perm l)
    ~t_reorder:(t2 -. t1)
    ~t_precond:(t3 -. t2 +. (t1 -. t0))
    ~factor_nnz:(Factor.Lower.nnz l)

let fegrass ?(recover_fraction = 0.02) () =
  {
    name = "fegrass";
    prepare =
      fegrass_prepare ~name:"fegrass" ~recover_fraction
        ~factorize:Factor.Chol.factorize;
  }

let fegrass_ichol ?(recover_fraction = 0.5) ?(drop_tol = 8.5e-6) () =
  {
    name = "fegrass-ichol";
    prepare =
      fegrass_prepare ~name:"fegrass-ichol" ~recover_fraction
        ~factorize:(Factor.Ichol.factorize ~drop_tol);
  }

(* ---- AMG ---- *)

let amg_pcg ?(theta = 0.08) ?smoother () =
  let prepare problem =
    let t0 = now () in
    let hierarchy =
      Obs.span "factor" (fun () ->
          Amg.build ~theta ?smoother problem.Sddm.Problem.a)
    in
    let t1 = now () in
    let precond = Amg.preconditioner hierarchy in
    make_prepared ~solver_name:"amg-pcg" problem ~precond ~t_reorder:0.0
      ~t_precond:(t1 -. t0) ~factor_nnz:precond.Krylov.Precond.nnz
  in
  { name = "amg-pcg"; prepare }

(* ---- direct & trivial baselines ---- *)

let direct () =
  let prepare problem =
    let g = problem.Sddm.Problem.graph in
    let t0 = now () in
    let perm = Obs.span "reorder" (fun () -> Ordering.Amd.order g) in
    let t1 = now () in
    let l =
      Obs.span "factor" (fun () ->
          Factor.Chol.factorize
            (Sparse.Csc.permute_sym problem.Sddm.Problem.a perm))
    in
    let t2 = now () in
    make_prepared ~solver_name:"direct" problem
      ~precond:(Krylov.Precond.of_factor ~name:"direct" ~perm l)
      ~t_reorder:(t1 -. t0) ~t_precond:(t2 -. t1)
      ~factor_nnz:(Factor.Lower.nnz l)
  in
  { name = "direct"; prepare }

let jacobi () =
  let prepare problem =
    let t0 = now () in
    let precond =
      Obs.span "factor" (fun () -> Krylov.Precond.jacobi problem.Sddm.Problem.a)
    in
    make_prepared ~solver_name:"jacobi" problem ~precond ~t_reorder:0.0
      ~t_precond:(now () -. t0) ~factor_nnz:precond.Krylov.Precond.nnz
  in
  { name = "jacobi"; prepare }

(* ---- hardened solve path: diagnose, escalate, verify ---- *)

type robust_result = {
  diagnostics : Robust.Diagnose.report;
  outcome : robust_outcome;
}

and robust_outcome =
  | Robust_solved of {
      x : Sparse.Vec.t;
      winner : string;
      iterations : int;
      residual : float;
      attempts : Robust.Fallback.attempt list;
    }
  | Robust_rejected of { reasons : string list }
  | Robust_exhausted of { attempts : Robust.Fallback.attempt list }

let robust_ok r = match r.outcome with Robust_solved _ -> true | _ -> false

let rung_of_solver ?name ?deadline ~rtol ~max_iter solver =
  {
    Robust.Fallback.name =
      (match name with Some n -> n | None -> solver.name);
    solve =
      (fun problem ->
        let r = run ~rtol ~max_iter ?deadline solver problem in
        {
          Robust.Fallback.x = r.x;
          iterations = r.iterations;
          note = Krylov.Pcg.status_to_string r.status;
        });
  }

let rung_of_prepared ?deadline ~name ~rtol ~max_iter prepare_fn =
  {
    Robust.Fallback.name;
    solve =
      (fun problem ->
        let p = prepare_fn problem in
        let r = solve_prepared ~rtol ~max_iter ?deadline p in
        {
          Robust.Fallback.x = r.x;
          iterations = r.iterations;
          note = Krylov.Pcg.status_to_string r.status;
        });
  }

(* Deterministic seed derivation for the reseed-and-retry rungs. *)
let reseed seed i = seed + (1000003 * (i + 1))

let robust_rungs ?(seed = default_seed) ?(retries = 2) ?deadline ~rtol
    ~max_iter () =
  (* The reseed rungs reuse the Alg. 4 permutation computed by the first
     powerrchol rung: reordering is deterministic and seed-independent, so
     a reseed only needs to re-run the (randomized) factorization. The
     memo keys by physical problem identity, so on disconnected grids each
     island component computes its own permutation exactly once. *)
  let memo : (Sddm.Problem.t * Sparse.Perm.t) option ref = ref None in
  let perm_for problem =
    match !memo with
    | Some (p, perm) when p == problem ->
      Obs.count "robust/perm_reuse" 1;
      perm
    | _ ->
      let perm =
        Obs.span "reorder" (fun () ->
            Ordering.Degree_sort.order ~heavy_factor:default_heavy_factor
              problem.Sddm.Problem.graph)
      in
      memo := Some (problem, perm);
      perm
  in
  let powerrchol_rung ~name seed =
    rung_of_prepared ?deadline ~name ~rtol ~max_iter (fun problem ->
        powerrchol_prepare ~seed ~perm:(perm_for problem) problem)
  in
  powerrchol_rung ~name:"powerrchol" seed
  :: List.init retries (fun i ->
         powerrchol_rung
           ~name:(Printf.sprintf "powerrchol(reseed %d)" (i + 1))
           (reseed seed i))
  @ [
      rung_of_solver ?deadline ~rtol ~max_iter (rchol ~ordering:Amd ~seed ());
      rung_of_solver ?deadline ~rtol ~max_iter (jacobi ());
      rung_of_solver ?deadline ~rtol ~max_iter (direct ());
    ]

let solve_robust ?(rtol = 1e-6) ?(max_iter = 500) ?(seed = default_seed)
    ?(retries = 2) ?deadline problem =
  let diagnostics = Robust.Diagnose.of_problem problem in
  if Robust.Diagnose.has_fatal diagnostics then
    {
      diagnostics;
      outcome =
        Robust_rejected
          {
            reasons =
              List.map Robust.Diagnose.issue_to_string
                (Robust.Diagnose.fatal_issues diagnostics);
          };
    }
  else begin
    let rungs = robust_rungs ~seed ~retries ?deadline ~rtol ~max_iter () in
    let comps = Robust.Diagnose.split_components problem in
    if Array.length comps = 1 then begin
      let o = Robust.Fallback.run ~rtol ?deadline ~rungs problem in
      match (o.Robust.Fallback.x, o.Robust.Fallback.winner) with
      | Some x, Some winner ->
        {
          diagnostics;
          outcome =
            Robust_solved
              {
                x;
                winner;
                iterations = o.Robust.Fallback.iterations;
                residual = o.Robust.Fallback.residual;
                attempts = o.Robust.Fallback.attempts;
              };
        }
      | _ ->
        {
          diagnostics;
          outcome = Robust_exhausted { attempts = o.Robust.Fallback.attempts };
        }
    end
    else begin
      (* clean but disconnected: solve every grounded island independently
         and scatter the solutions back (per-island rtol implies the global
         rtol because the islands are orthogonal blocks of A) *)
      let n = Sddm.Problem.n problem in
      let parts =
        Array.map
          (fun c ->
            ( c,
              Robust.Fallback.run ~rtol ?deadline ~rungs
                c.Robust.Diagnose.problem ))
          comps
      in
      let attempts =
        Array.to_list parts
        |> List.mapi (fun i ((_, o) : Robust.Diagnose.component * _) ->
               List.map
                 (fun (a : Robust.Fallback.attempt) ->
                   {
                     a with
                     Robust.Fallback.rung =
                       Printf.sprintf "c%d/%s" i a.Robust.Fallback.rung;
                   })
                 o.Robust.Fallback.attempts)
        |> List.concat
      in
      if Array.for_all (fun (_, o) -> Robust.Fallback.succeeded o) parts then begin
        let x =
          Robust.Diagnose.assemble ~n
            (Array.to_list parts
            |> List.map (fun ((c, o) : _ * Robust.Fallback.outcome) ->
                   (c, Option.get o.Robust.Fallback.x)))
        in
        let residual = Sddm.Problem.residual_norm problem x in
        let iterations =
          Array.fold_left
            (fun acc (_, (o : Robust.Fallback.outcome)) ->
              acc + o.Robust.Fallback.iterations)
            0 parts
        in
        let winner =
          Array.to_list parts
          |> List.map (fun (_, (o : Robust.Fallback.outcome)) ->
                 Option.get o.Robust.Fallback.winner)
          |> List.sort_uniq compare |> String.concat "+"
        in
        {
          diagnostics;
          outcome = Robust_solved { x; winner; iterations; residual; attempts };
        }
      end
      else { diagnostics; outcome = Robust_exhausted { attempts } }
    end
  end

(* ---- telemetry ---- *)

(* A profiled run owns the global Obs store for its duration: reset,
   enable, run, snapshot. The previous enabled state is restored so
   nesting a profiled solve inside other instrumented code stays sane. *)
let with_obs ~meta_of f =
  let was = Obs.enabled () in
  Obs.reset ();
  Obs.set_enabled true;
  match f () with
  | v ->
    let record = Obs.capture ~meta:(meta_of v) () in
    Obs.set_enabled was;
    (v, record)
  | exception exn ->
    Obs.set_enabled was;
    raise exn

let result_meta problem (r : result) =
  [
    ("solver", Obs.Json.Str r.solver);
    ("case", Obs.Json.Str problem.Sddm.Problem.name);
    ("n", Obs.Json.Int (Sddm.Problem.n problem));
    ("nnz", Obs.Json.Int (Sddm.Problem.nnz problem));
    ("iterations", Obs.Json.Int r.iterations);
    ("status", Obs.Json.Str (Krylov.Pcg.status_to_string r.status));
    ("converged", Obs.Json.Bool r.converged);
    ("relres", Obs.Json.Float r.residual);
    ("t_reorder", Obs.Json.Float r.t_reorder);
    ("t_factor", Obs.Json.Float r.t_precond);
    ("t_iterate", Obs.Json.Float r.t_iterate);
    ("t_total", Obs.Json.Float r.t_total);
    ("factor_nnz", Obs.Json.Int r.factor_nnz);
    ("par_backend", Obs.Json.Str Par.backend);
    ("domains", Obs.Json.Int (Par.effective_domains ()));
  ]

let run_profiled ?rtol ?max_iter solver problem =
  with_obs
    ~meta_of:(result_meta problem)
    (fun () -> run ?rtol ?max_iter solver problem)

let robust_meta_of ~case ~n ~nnz (r : robust_result) =
  let common =
    [
      ("mode", Obs.Json.Str "robust");
      ("case", Obs.Json.Str case);
      ("n", Obs.Json.Int n);
      ("nnz", Obs.Json.Int nnz);
      ("par_backend", Obs.Json.Str Par.backend);
      ("domains", Obs.Json.Int (Par.effective_domains ()));
    ]
  in
  common
  @
  match r.outcome with
  | Robust_solved { winner; iterations; residual; attempts; _ } ->
    [
      ("outcome", Obs.Json.Str "solved");
      ("winner", Obs.Json.Str winner);
      ("iterations", Obs.Json.Int iterations);
      ("relres", Obs.Json.Float residual);
      ("failed_rungs", Obs.Json.Int (List.length attempts));
    ]
  | Robust_rejected { reasons } ->
    [
      ("outcome", Obs.Json.Str "rejected");
      ("reasons", Obs.Json.List (List.map (fun m -> Obs.Json.Str m) reasons));
    ]
  | Robust_exhausted { attempts } ->
    [
      ("outcome", Obs.Json.Str "exhausted");
      ("failed_rungs", Obs.Json.Int (List.length attempts));
    ]

let robust_meta problem =
  robust_meta_of
    ~case:problem.Sddm.Problem.name
    ~n:(Sddm.Problem.n problem)
    ~nnz:(Sddm.Problem.nnz problem)

let solve_robust_profiled ?rtol ?max_iter ?seed ?retries ?deadline problem =
  with_obs
    ~meta_of:(robust_meta problem)
    (fun () -> solve_robust ?rtol ?max_iter ?seed ?retries ?deadline problem)

(* Deterministic one-line rendering of the whole robust run: diagnostic
   summary, every failed rung with its reason, and the final verdict. Used
   by the determinism tests (byte-identical across equal-seed runs) and the
   CLI trace output. *)
let robust_trace r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "diagnose: n=%d nnz=%d components=%d issues=[%s] | "
       r.diagnostics.Robust.Diagnose.n r.diagnostics.Robust.Diagnose.nnz
       r.diagnostics.Robust.Diagnose.components
       (String.concat "; "
          (List.map Robust.Diagnose.issue_to_string
             r.diagnostics.Robust.Diagnose.issues)));
  let add_attempts attempts =
    List.iter
      (fun (a : Robust.Fallback.attempt) ->
        Buffer.add_string buf
          (Printf.sprintf "failed %s: %s; " a.Robust.Fallback.rung
             (Robust.Fallback.failure_to_string a.Robust.Fallback.failure)))
      attempts
  in
  (match r.outcome with
   | Robust_rejected { reasons } ->
     Buffer.add_string buf ("rejected: " ^ String.concat "; " reasons)
   | Robust_solved { winner; iterations; residual; attempts; _ } ->
     add_attempts attempts;
     Buffer.add_string buf
       (Printf.sprintf "recovered by %s: %d iterations, residual %.6e" winner
          iterations residual)
   | Robust_exhausted { attempts } ->
     add_attempts attempts;
     Buffer.add_string buf "exhausted: no rung produced a verified solution");
  Buffer.contents buf
