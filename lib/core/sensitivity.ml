type gradient = {
  d_edges : float array;
  d_pads : float array;
  objective : float;
}

(* phi = c^T x with A x = b. Adjoint: A^T lambda = c (A symmetric).
   dA/dw_uv = (e_u - e_v)(e_u - e_v)^T, so
   dphi/dw_uv = -lambda^T (dA/dw) x = -(lambda_u - lambda_v)(x_u - x_v).
   dA/dd_u = e_u e_u^T, so dphi/dd_u = -lambda_u x_u. *)
let of_objective ?rtol ?(seed = Solver.default_seed) p ~c =
  let n = Sddm.Problem.n p in
  assert (Sparse.Vec.length c = n);
  (* primal and adjoint share one preparation (A is symmetric); the
     adjoint is just the same factorization against rhs [c] *)
  let prepared = Engine.powerrchol ~seed p in
  let primal = Solver.solve_prepared ?rtol ~b:p.Sddm.Problem.b prepared in
  let adjoint = Solver.solve_prepared ?rtol ~b:c prepared in
  let x = primal.Solver.x and lambda = adjoint.Solver.x in
  let g = Sddm.Graph.coalesce p.Sddm.Problem.graph in
  let m = Sddm.Graph.n_edges g in
  let d_edges = Array.make m 0.0 in
  for e = 0 to m - 1 do
    let u, v, _ = Sddm.Graph.edge g e in
    d_edges.(e) <- -.((x.{u} -. x.{v}) *. (lambda.{u} -. lambda.{v}))
  done;
  let d_pads = Array.init n (fun i -> -.(x.{i} *. lambda.{i})) in
  { d_edges; d_pads; objective = Sparse.Vec.dot c x }

let worst_node_drop ?rtol ?seed p =
  let primal = Pipeline.solve ?rtol ?seed p in
  let worst = ref 0 in
  let px = primal.Solver.x in
  Sparse.Vec.iteri (fun i v -> if v > px.{!worst} then worst := i) px;
  let c = Sparse.Vec.create (Sddm.Problem.n p) in
  c.{!worst} <- 1.0;
  (!worst, of_objective ?rtol ?seed p ~c)

let most_critical_edges p gradient k =
  let g = Sddm.Graph.coalesce p.Sddm.Problem.graph in
  let m = Sddm.Graph.n_edges g in
  let order = Array.init m (fun e -> e) in
  Array.sort
    (fun a b -> compare gradient.d_edges.(a) gradient.d_edges.(b))
    order;
  let take = min k m in
  List.init take (fun i ->
      let e = order.(i) in
      let u, v, w = Sddm.Graph.edge g e in
      (u, v, w, gradient.d_edges.(e)))
