(** Transient power-grid analysis by backward-Euler time stepping.

    With on-die decoupling capacitance [C] (diagonal: decap to ground) the
    grid obeys [C dv/dt + G v = -i(t)] in the drop formulation. Backward
    Euler with a fixed step [h] gives, per step,

    [(G + C/h) v_{k+1} = (C/h) v_k + b(t_{k+1})],

    and [G + C/h] is again SDDM — the capacitors only add to the excess
    diagonal. The system matrix is constant across steps, so the LT-RChol
    preconditioner is built {e once} and every step is a handful of PCG
    iterations warm-started from the previous voltage. This is exactly the
    workload where cheap-to-build, high-quality preconditioners pay off
    most, and the reason power-grid papers care about preconditioner
    construction time.

    Time-varying loads are modeled by a scalar waveform multiplying the DC
    load vector (clock gating: the whole block switches together). *)

type t
(** A prepared transient simulation: shifted matrix, factorization,
    initial state. *)

type step_stats = {
  time : float;  (** simulated time at the end of the step (s) *)
  iterations : int;  (** PCG iterations this step *)
  max_drop : float;  (** worst instantaneous IR drop (V) *)
  mean_drop : float;
}

type result = {
  steps : step_stats array;
  v_final : Sparse.Vec.t;  (** final drop vector *)
  peak_drop : float;  (** max over all steps *)
  peak_time : float;  (** when the peak occurred *)
  total_iterations : int;
  t_prepare : float;  (** one-time reordering + factorization seconds *)
  t_march : float;  (** total time-stepping seconds *)
}

val prepare :
  ?rtol:float -> ?seed:int -> circuit:Powergrid.Generate.circuit -> h:float -> unit -> t
(** [prepare ~circuit ~h ()] builds the backward-Euler operator
    [G + C/h] for step size [h] (seconds) and factors it with the
    PowerRChol pipeline (Alg. 4 + LT-RChol). Raises [Invalid_argument] if
    the circuit has no capacitance at all (use DC analysis instead). *)

val problem : t -> Sddm.Problem.t
(** The current shifted backward-Euler system [G + C/h]. Re-read after
    {!update}: a pattern-growing edit replaces the record wholesale. *)

val update : t -> Sddm.Edit.t list -> Engine.Session.update_report
(** Apply grid edits (ECO flow) to the shifted system between marches,
    through the session's incremental update rungs ({!Engine.Session}).
    Edits address the {e shifted} matrix: conductance edits mean exactly
    what they do at DC, while [Set_excess node s] sets the node's pad
    conductance {e plus} its [C/h] contribution to [s]. The next
    {!simulate} (and {!dc_drop}) picks up the edited matrix and the
    revalidated preconditioner; the PCG workspace — and with it
    warm-started iteration state — survives every rung, including the
    full re-prepare. *)

val simulate :
  t -> steps:int -> waveform:(float -> float) -> result
(** [simulate t ~steps ~waveform] marches [steps] backward-Euler steps
    from the all-zero drop state. [waveform time] scales the DC load
    vector at each step (values in [0, inf); 1 = full DC load). *)

val dc_drop : t -> Sparse.Vec.t
(** Steady-state drop under full load, for comparing transient peaks
    against the DC answer. *)

(** Common load waveforms. *)
module Waveform : sig
  val step : float -> float
  (** 0 before t=0, 1 after: power-on surge. *)

  val pulse : period:float -> duty:float -> float -> float
  (** Clock-gated block: 1 during the first [duty] fraction of each
      period, 0 otherwise. *)

  val ramp : rise:float -> float -> float
  (** Linear ramp from 0 to 1 over [rise] seconds. *)
end
