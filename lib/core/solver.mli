(** Uniform solver interface over PowerRChol and all baselines.

    Every solver is a {e preparation} step (reordering + preconditioner
    construction, timed separately as the paper's [T_r] and [T_f]) followed
    by PCG iteration ([T_i], [N_i]). The benchmark tables are produced by
    running the same problems through each [t].

    Since this layer was refactored around the factor-once / solve-many
    workload, a {!prepared} value is a first-class, reusable handle: keep
    it and call {!solve_prepared} / {!solve_many} for every new right-hand
    side — the reordering and factorization are paid exactly once. See
    {!Engine} for the fingerprint cache that shares handles across
    independent call sites. *)

type prepared = {
  solver_name : string;  (** name of the solver that built the handle *)
  problem : Sddm.Problem.t;  (** the system the factorization belongs to *)
  precond : Krylov.Precond.t;
  workspace : Krylov.Pcg.Workspace.t;
      (** owned PCG iteration buffers. Ownership rule: a handle serves one
          solve at a time — {!solve_prepared} calls on the same handle
          must be sequential (they are everywhere in this codebase, which
          is single-threaded). *)
  t_reorder : float;  (** seconds spent computing the permutation *)
  t_precond : float;  (** seconds spent building the preconditioner *)
  factor_nnz : int;  (** stored nonzeros of the preconditioner *)
}

type t = {
  name : string;
  prepare : Sddm.Problem.t -> prepared;
}

type result = {
  solver : string;
  x : Sparse.Vec.t;
  iterations : int;
  status : Krylov.Pcg.status;  (** typed PCG exit status *)
  converged : bool;  (** derived view: [status = Converged] *)
  residual : float;  (** true relative residual, recomputed from [x] *)
  t_reorder : float;
  t_precond : float;
  t_iterate : float;
  t_total : float;
  factor_nnz : int;
}

val prepare : t -> Sddm.Problem.t -> prepared
(** [prepare solver problem] reorders and factorizes once, returning the
    reusable handle. Recorded under the Obs span ["prepare"]. *)

val make_prepared :
  solver_name:string -> Sddm.Problem.t -> precond:Krylov.Precond.t ->
  t_reorder:float -> t_precond:float -> factor_nnz:int -> prepared
(** Assemble a handle from its parts (fresh PCG workspace, preconditioner
    size gauge recorded). The construction path shared by every solver's
    [prepare] and by {!Engine}'s session layer. *)

val solve_prepared :
  ?rtol:float -> ?max_iter:int -> ?deadline:float -> ?x0:Sparse.Vec.t ->
  ?history:bool -> ?condition:bool -> ?b:Sparse.Vec.t -> prepared -> result
(** [solve_prepared p] runs PCG against the prepared factorization.
    [b] defaults to the right-hand side of the prepared problem; pass a
    different [b] (of the same dimension) to solve the same matrix for a
    new load vector. [deadline] (absolute wall-clock instant, {!Obs.now}
    clock) cancels the iteration cooperatively — see [Pcg.solve].
    [history] and [condition] default to [false] — the
    batched path does not build the O(iterations) diagnostics.

    {b Marginal-cost semantics:} the returned [t_reorder]/[t_precond] are
    0 and [t_total = t_iterate]; the one-time preparation cost lives on
    the handle. [residual] is verified against the actual [b] solved. *)

val solve_many :
  ?rtol:float -> ?max_iter:int -> ?deadline:float -> ?history:bool ->
  ?condition:bool -> prepared -> Sparse.Vec.t array -> result array
(** [solve_many p bs] amortizes one factorization over a batch of
    right-hand sides. With one domain (or a busy pool) the batch runs
    sequentially on the handle's workspace; with more domains it is
    fanned across the default {!Par} pool in contiguous chunks, one
    private workspace per chunk; every solve's inner kernels then run
    sequentially, so the results are bit-identical to the sequential
    batch at any domain count.

    Telemetry stays live at any domain count: the batch is one
    ["solve_many"] span containing a ["solve#k"] span per right-hand
    side (k = batch index), with per-solve wall times in the
    ["solve_many/solve_seconds"] histogram. On the parallel path each
    chunk records into its own per-domain Obs store and [Obs.capture]
    merges them deterministically, so a profiled batch reports the same
    span paths and bit-identical counter totals as the sequential run
    (plus [par/busy_s#i] / [par/imbalance] load counters). *)

val run :
  ?rtol:float -> ?max_iter:int -> ?deadline:float -> t -> Sddm.Problem.t ->
  result
(** Prepare, iterate, time, and verify — the one-shot path. [rtol]
    defaults to 1e-6 and [max_iter] to 500, the paper's settings. *)

val iterate :
  ?rtol:float -> ?max_iter:int -> ?deadline:float -> t -> prepared ->
  Sddm.Problem.t -> result
(** Reuse a preparation against [problem]'s matrix and rhs (used by the
    Fig. 2 tolerance sweep). Unlike {!solve_prepared} the result carries
    the preparation times and [t_total] includes them. *)

(** {1 Solver constructors}

    All randomized solvers are deterministic given [seed]
    (default [20240623]). *)

type ordering =
  | Amd
  | Natural
  | Degree_sort
  | Rcm
  | Nested_dissection
  | Partitioned
      (** Recursive bisection with Alg. 4 degree sort inside each block
          ([Ordering.Partitioned]) — the ordering that gives the
          elimination tree independent branches for the multicore
          factorization. Named ["part"]. *)

val ordering_name : ordering -> string
val apply_ordering : ordering -> Sddm.Graph.t -> Sparse.Perm.t

val powerrchol : ?buckets:int -> ?heavy_factor:float -> ?seed:int -> unit -> t
(** The paper's solver: partitioned Alg. 4 reordering + LT-RChol (Alg. 3)
    + PCG. *)

val powerrchol_prepare :
  ?buckets:int -> ?heavy_factor:float -> ?seed:int ->
  ?perm:Sparse.Perm.t -> Sddm.Problem.t -> prepared
(** The paper's preparation with an optional precomputed permutation
    (partitioned Alg. 4 by default). Reordering is deterministic and
    seed-independent, so a caller that already holds the permutation (the
    robust reseed rungs) skips straight to the randomized factorization. *)

val rchol : ?ordering:ordering -> ?seed:int -> unit -> t
(** Original RChol (Alg. 1) preconditioner; default AMD ordering, the
    configuration of [3] used as baseline in Table 1. *)

val lt_rchol : ?ordering:ordering -> ?buckets:int -> ?seed:int -> unit -> t
(** LT-RChol with a chosen ordering — the Table 2 rows. *)

val rand_chol_custom :
  name:string -> sort:Factor.Rand_chol.sort ->
  sampling:Factor.Rand_chol.sampling -> ordering:ordering -> ?seed:int ->
  unit -> t
(** Fully custom randomized-Cholesky solver (ablation benches). *)

val fegrass : ?recover_fraction:float -> unit -> t
(** feGRASS-PCG [11]: sparsifier (2%·|V| recovered edges) factorized
    exactly under AMD. *)

val fegrass_ichol : ?recover_fraction:float -> ?drop_tol:float -> unit -> t
(** feGRASS-IChol-PCG [9]: 50%·|V| recovery + ICT(8.5e-6). *)

val amg_pcg : ?theta:float -> ?smoother:Amg.smoother -> unit -> t
(** AMG-PCG [14] (the PowerRush solver core). [smoother] defaults to
    symmetric Gauss-Seidel; see {!Amg.build}. *)

val direct : unit -> t
(** AMD + exact Cholesky as a "preconditioner": PCG converges in one
    iteration; total time is dominated by factorization. Sanity baseline. *)

val jacobi : unit -> t
(** Diagonal preconditioning; the weak baseline. *)

val default_seed : int
val default_heavy_factor : float

(** {1 Hardened solve path}

    The production entry point for untrusted input: pre-flight diagnostics
    ({!Robust.Diagnose}), per-island solving for disconnected grids, and a
    deterministic fallback chain
    [powerrchol -> reseed-and-retry xk -> rchol(amd) -> jacobi -> direct]
    whose every rung is verified against the {e true} residual. A bad input
    yields a structured report — never a silent wrong answer. *)

type robust_result = {
  diagnostics : Robust.Diagnose.report;  (** the pre-flight report *)
  outcome : robust_outcome;
}

and robust_outcome =
  | Robust_solved of {
      x : Sparse.Vec.t;
      winner : string;
          (** rung that produced the verified solution; for multi-island
              solves, the distinct winning rungs joined with [+] *)
      iterations : int;  (** summed over islands *)
      residual : float;  (** verified true relative residual *)
      attempts : Robust.Fallback.attempt list;
          (** rungs that failed before the winner (prefixed [c<i>/] per
              island on disconnected systems) *)
    }
  | Robust_rejected of { reasons : string list }
      (** fatal pre-flight diagnostics: solving was not attempted *)
  | Robust_exhausted of { attempts : Robust.Fallback.attempt list }
      (** every rung failed; the trace says why, rung by rung *)

val solve_robust :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?retries:int ->
  ?deadline:float -> Sddm.Problem.t -> robust_result
(** [rtol] defaults to 1e-6, [max_iter] to 500, [seed] to {!default_seed},
    [retries] (reseed-and-retry rungs) to 2. [deadline] (absolute
    wall-clock instant) bounds the {e whole chain}: it is propagated into
    every rung's PCG loop and checked between rungs, so an expired budget
    surfaces as [Timed_out] attempts instead of further escalation.
    Without [deadline], deterministic given [seed]: two runs produce
    identical outcomes and byte-identical {!robust_trace}s. *)

val robust_ok : robust_result -> bool
(** True iff the outcome is [Robust_solved]. *)

val robust_rungs :
  ?seed:int -> ?retries:int -> ?deadline:float -> rtol:float ->
  max_iter:int -> unit -> Robust.Fallback.rung list
(** The default escalation chain, exposed for custom {!Robust.Fallback}
    policies. The powerrchol rung and its reseed-and-retry rungs share one
    Alg. 4 permutation per problem (computed by whichever rung runs first,
    memoized by physical problem identity) — a reseed re-runs only the
    randomized factorization. *)

val rung_of_prepared :
  ?deadline:float -> name:string -> rtol:float -> max_iter:int ->
  (Sddm.Problem.t -> prepared) -> Robust.Fallback.rung
(** Build a fallback rung from a preparation function — the hook through
    which rungs accept (and share) prepared handles. Exceptions raised by
    the preparation (factorization breakdowns) are classified by
    {!Robust.Fallback.run} like any rung failure. *)

val robust_trace : robust_result -> string
(** Deterministic one-line trace: diagnostics summary, each failed rung
    with its reason, final verdict. *)

(** {1 Telemetry}

    Profiled variants enable the {!Obs} layer for the duration of one
    solve and return the captured record alongside the result: phase
    spans ([reorder] / [factor] / [pcg] with sub-spans for the bucket
    sort, target-array merge, and triangular solves), counters (sampled
    clique edges, fill-in nonzeros, [precond_nnz_ratio], PCG iterations,
    fallback escalations), and a meta header whose [iterations], [status]
    and phase times mirror the {!result}. *)

val run_profiled :
  ?rtol:float -> ?max_iter:int -> t -> Sddm.Problem.t ->
  result * Obs.record

val solve_robust_profiled :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?retries:int ->
  ?deadline:float -> Sddm.Problem.t -> robust_result * Obs.record

val with_obs :
  meta_of:('a -> (string * Obs.Json.t) list) -> (unit -> 'a) ->
  'a * Obs.record
(** Building block for profiled entry points over other solve paths
    (e.g. {!Pipeline.solve_matrix_robust_profiled}): reset and enable the
    {!Obs} store, run the thunk, capture the record with [meta_of]'s
    header, and restore the previous enabled state (also on exception). *)

val robust_meta_of :
  case:string -> n:int -> nnz:int -> robust_result ->
  (string * Obs.Json.t) list
(** The meta header {!solve_robust_profiled} attaches, for callers that
    only have the raw matrix dimensions (no {!Sddm.Problem.t}). *)
