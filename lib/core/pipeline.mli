(** High-level entry points: "give me the node voltages".

    This is the API a power-grid tool would embed: hand over an SDDM system
    (or a raw matrix), get the solution plus the phase timing that the
    paper's tables report. *)

val solve :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?buckets:int ->
  ?heavy_factor:float -> Sddm.Problem.t -> Solver.result
(** Run the full PowerRChol pipeline (§3.3 of the paper): Alg. 4
    reordering, LT-RChol factorization, PCG to [rtol] (default 1e-6).
    Preparations go through the {!Engine} cache, so solving the same
    system again (or following up with {!solve_many}) reuses the
    factorization; the result still reports the full preparation cost. *)

val solve_many :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?buckets:int ->
  ?heavy_factor:float -> Sddm.Problem.t -> Sparse.Vec.t array ->
  Solver.prepared * Solver.result array
(** [solve_many problem bs] factors once (through the {!Engine} cache) and
    solves every right-hand side in [bs] against it. Each result carries
    marginal cost only ({!Solver.solve_prepared} semantics); the returned
    handle holds the one-time preparation cost for amortized reporting.
    Iterates exactly like [List.map solve] — the solutions are
    bit-identical to per-RHS {!solve} calls with the same seed. *)

val open_session :
  ?seed:int -> ?buckets:int -> ?heavy_factor:float -> Sddm.Problem.t ->
  Engine.Session.t
(** Open a versioned incremental-solve session on [problem] (see
    {!Engine.Session}): the ECO entry point for workloads that edit the
    grid between solves. *)

val resolve :
  ?rtol:float -> ?max_iter:int -> Engine.Session.t -> Sddm.Edit.t list ->
  Engine.Session.update_report * Solver.result
(** [resolve session edits] applies the edits through the cheapest
    applicable update rung and solves the edited system — the
    edit-solve-repeat loop as one call. Pass [[]] to just re-solve. *)

val solve_matrix :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?name:string ->
  a:Sparse.Csc.t -> b:Sparse.Vec.t -> unit -> Solver.result
(** Like {!solve} but validates and splits a raw matrix first. Raises
    [Invalid_argument] if [a] is not SDDM. *)

val solve_profiled :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?buckets:int ->
  ?heavy_factor:float -> Sddm.Problem.t -> Solver.result * Obs.record
(** {!solve} with the observability layer enabled: also returns the
    structured telemetry record (hierarchical phase spans, counters, and
    a meta header matching the result). Render with
    {!Obs.record_to_text} or export with {!Obs.record_to_json}. *)

val pp_result : Format.formatter -> Solver.result -> unit
(** One-paragraph human-readable report (phase times, iterations,
    residual). *)

(** {1 Hardened entry points}

    Production variants that never return a silent wrong answer: input is
    diagnosed before solving, disconnected grids are solved island by
    island, and solver failures escalate down a deterministic fallback
    chain with every rung verified against the true residual. See
    {!Solver.solve_robust}. *)

val solve_robust :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?retries:int ->
  Sddm.Problem.t -> Solver.robust_result

val solve_matrix_robust :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?retries:int ->
  ?name:string -> a:Sparse.Csc.t -> b:Sparse.Vec.t -> unit ->
  Solver.robust_result
(** Like {!solve_robust} but accepts a raw, possibly corrupted matrix: the
    pre-flight diagnostics run {e before} SDDM validation, so NaN entries,
    asymmetry, lost dominance, zero rows, and floating islands come back as
    a structured [Robust_rejected] report instead of an exception. *)

val solve_matrix_robust_profiled :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?retries:int ->
  ?name:string -> a:Sparse.Csc.t -> b:Sparse.Vec.t -> unit ->
  Solver.robust_result * Obs.record
(** {!solve_matrix_robust} with the observability layer enabled (see
    {!Solver.solve_robust_profiled}). Diagnostics-rejected inputs still
    produce a record: [outcome = "rejected"] in the meta, with whatever
    spans ran before rejection. *)

val pp_robust : Format.formatter -> Solver.robust_result -> unit
(** Human-readable diagnostic report plus fallback trace. *)
