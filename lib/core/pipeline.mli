(** High-level entry points: "give me the node voltages".

    This is the API a power-grid tool would embed: hand over an SDDM system
    (or a raw matrix), get the solution plus the phase timing that the
    paper's tables report. *)

val solve :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?buckets:int ->
  ?heavy_factor:float -> Sddm.Problem.t -> Solver.result
(** Run the full PowerRChol pipeline (§3.3 of the paper): Alg. 4
    reordering, LT-RChol factorization, PCG to [rtol] (default 1e-6). *)

val solve_matrix :
  ?rtol:float -> ?max_iter:int -> ?seed:int -> ?name:string ->
  a:Sparse.Csc.t -> b:float array -> unit -> Solver.result
(** Like {!solve} but validates and splits a raw matrix first. Raises
    [Invalid_argument] if [a] is not SDDM. *)

val pp_result : Format.formatter -> Solver.result -> unit
(** One-paragraph human-readable report (phase times, iterations,
    residual). *)
