(** Process-wide cache of {!Solver.prepared} handles, plus the versioned
    {!Session} layer for incremental re-solves (the ECO flow).

    The factor-once / solve-many workload appears at several independent
    call sites — {!Pipeline.solve} per matrix, {!Transient.prepare} for the
    shifted backward-Euler system, {!Sensitivity.of_objective} for primal
    and adjoint solves, and the CLI batch path. They all key preparations
    here by a cheap structural fingerprint (solver config, [n], [nnz], an
    FNV-1a checksum over the graph edges and excess diagonal — {e not} the
    right-hand side, since a factorization is RHS-independent), so asking
    twice for the same solver on the same system pays one reordering and
    one factorization.

    The cache is FIFO with a small default capacity ({!default_capacity});
    handles hold O(factor nnz) floats, so the cap bounds memory, and the
    workloads that benefit revisit the same few systems. Misses run the
    preparation under the Obs span ["prepare"] and count ["engine/miss"];
    hits count ["engine/hit"]. The cumulative statistics are additionally
    published as Obs gauges ([engine/hits], [engine/misses],
    [engine/evictions], [engine/live_handles]), refreshed on every cache
    operation, so a profiled run or the pgserve metrics endpoint can
    report them without reaching into this module.

    Not thread-safe — like the rest of the library, one solve at a time. *)

val prepare : ?config:string -> Solver.t -> Sddm.Problem.t -> Solver.prepared
(** [prepare ?config solver problem] returns a cached handle when the
    fingerprint matches a previous call, otherwise runs [solver.prepare].
    [config] must encode every parameter baked into the solver closure
    (seed, buckets, …) that the solver's [name] does not; two solvers with
    equal name+config must prepare identically. *)

val powerrchol :
  ?buckets:int -> ?heavy_factor:float -> ?seed:int -> Sddm.Problem.t ->
  Solver.prepared
(** The paper's solver through the cache, with the config string derived
    from the actual parameters — the safe entry point for powerrchol
    preparations (no config-string discipline required of the caller). *)

val default_capacity : int

val set_capacity : int -> unit
(** Resize the cache, evicting oldest entries if shrinking. [0] disables
    caching (every call prepares afresh). *)

val clear : unit -> unit
(** Drop all cached handles (e.g. between benchmark phases so timings
    don't observe cross-phase reuse). Does not reset the hit/miss
    counters. *)

val hits : unit -> int
val misses : unit -> int

val evictions : unit -> int
(** Handles dropped by capacity pressure, {!set_capacity} shrinks, or a
    session re-registering under a new version. *)

val live_handles : unit -> int
(** Prepared handles currently held by the cache. *)

val reset_stats : unit -> unit

(** {1 Versioned sessions}

    A session owns an editable power-grid system together with its
    ordering, an {e updatable} LT-RChol factorization, and a
    monotonically increasing version. {!Session.update} applies a batch
    of {!Sddm.Edit.t} values and revalidates the preparation by the
    cheapest applicable rung:

    - {!Session.Rhs_only} — only loads changed; the factorization is
      untouched.
    - {!Session.Local} — etree-local re-factorization: only the columns
      in the ancestor closure of the edited nodes are re-eliminated, in
      place, with the factor's structural choices frozen
      (see {!Factor.Rand_chol.refactor}).
    - {!Session.Low_rank} — the closure was too large but the edit
      touches few nodes: the existing preconditioner is wrapped with a
      Woodbury correction for the pending matrix delta. The factor
      itself stays stale; deltas accumulate until a later update
      succeeds with a deeper rung.
    - {!Session.Full} — fallback that re-prepares from scratch exactly
      as {!powerrchol} would (bit-for-bit: same ordering, same seed
      discipline), preserving the PCG workspace so warm-started
      iteration state survives.

    Rung selection is automatic; rungs ruled out by policy are recorded
    as {!Robust.Fallback.Skipped} attempts in the report, mirroring the
    fallback engine's unattempted-rung convention. After any update
    sequence the active preconditioner preconditions the {e edited}
    matrix — {!Session.solve} always verifies the true residual through
    {!Solver.solve_prepared}.

    Each session registers its current handle in the cache under a
    version-aware key, replacing (and counting as eviction of) the
    previous version's entry, so stale handles cannot alias fresh
    ones. *)

module Session : sig
  type t

  type rung = Rhs_only | Local | Low_rank | Full

  val rung_name : rung -> string

  type update_report = {
    version : int;  (** session version after this update *)
    rung : rung;  (** the rung that revalidated the preparation *)
    columns : int;  (** columns re-eliminated (Local rung, else 0) *)
    support : int;  (** pending-delta support size (Low_rank attempts) *)
    skipped : Robust.Fallback.attempt list;
        (** rungs ruled out by policy, with reasons *)
    t_update : float;  (** wall seconds spent in this update *)
    changes : Sddm.Edit.change list;  (** per-edit classification *)
  }

  val create :
    ?buckets:int -> ?heavy_factor:float -> ?seed:int ->
    ?max_fraction:float -> ?low_rank_max:int -> Sddm.Problem.t -> t
  (** Deep-copy [problem] into an editable session and prepare it (Alg. 4
      ordering + updatable LT-RChol). [max_fraction] (default [0.25])
      bounds the Local rung: a re-factorization touching more than
      [max_fraction * n] columns escalates. [low_rank_max] (default [16])
      bounds the Woodbury rung's support size. *)

  val id : t -> int
  (** Process-unique session id (also the cache checksum, so sessions
      never collide with fingerprinted immutable preparations). *)

  val version : t -> int
  (** Starts at [0]; incremented by every {!update}. *)

  val problem : t -> Sddm.Problem.t
  (** The current edited problem (see {!Sddm.Edit.problem} for the
      in-place-patching contract). *)

  val prepared : t -> Solver.prepared
  (** The session's current handle — also reachable through the cache. *)

  val update : t -> Sddm.Edit.t list -> update_report
  (** Apply the edits and revalidate. Raises [Invalid_argument] (before
      mutating anything) if an edit is invalid. After return,
      [prepared t] preconditions the edited matrix regardless of the
      rung taken. *)

  val solve :
    ?rtol:float -> ?max_iter:int -> ?deadline:float -> ?x0:Sparse.Vec.t ->
    ?b:Sparse.Vec.t -> t -> Solver.result
  (** Solve against the session's current matrix and preparation; [b]
      defaults to the session's current (edited) right-hand side. Same
      marginal-cost semantics as {!Solver.solve_prepared}. *)

  val close : t -> unit
  (** Drop the session's cache entry. The session record itself is inert
      afterwards (solving still works; it just no longer holds a cache
      slot). *)
end

val update : Session.t -> Sddm.Edit.t list -> Session.update_report
(** Alias for {!Session.update} — the engine-level entry point named in
    the ECO flow. *)
