(** Process-wide cache of {!Solver.prepared} handles.

    The factor-once / solve-many workload appears at several independent
    call sites — {!Pipeline.solve} per matrix, {!Transient.prepare} for the
    shifted backward-Euler system, {!Sensitivity.of_objective} for primal
    and adjoint solves, and the CLI batch path. They all key preparations
    here by a cheap structural fingerprint (solver config, [n], [nnz], an
    FNV-1a checksum over the graph edges and excess diagonal — {e not} the
    right-hand side, since a factorization is RHS-independent), so asking
    twice for the same solver on the same system pays one reordering and
    one factorization.

    The cache is FIFO with a small default capacity ({!default_capacity});
    handles hold O(factor nnz) floats, so the cap bounds memory, and the
    workloads that benefit revisit the same few systems. Misses run the
    preparation under the Obs span ["prepare"] and count ["engine/miss"];
    hits count ["engine/hit"].

    Not thread-safe — like the rest of the library, one solve at a time. *)

val prepare : ?config:string -> Solver.t -> Sddm.Problem.t -> Solver.prepared
(** [prepare ?config solver problem] returns a cached handle when the
    fingerprint matches a previous call, otherwise runs [solver.prepare].
    [config] must encode every parameter baked into the solver closure
    (seed, buckets, …) that the solver's [name] does not; two solvers with
    equal name+config must prepare identically. *)

val powerrchol :
  ?buckets:int -> ?heavy_factor:float -> ?seed:int -> Sddm.Problem.t ->
  Solver.prepared
(** The paper's solver through the cache, with the config string derived
    from the actual parameters — the safe entry point for powerrchol
    preparations (no config-string discipline required of the caller). *)

val default_capacity : int

val set_capacity : int -> unit
(** Resize the cache, evicting oldest entries if shrinking. [0] disables
    caching (every call prepares afresh). *)

val clear : unit -> unit
(** Drop all cached handles (e.g. between benchmark phases so timings
    don't observe cross-phase reuse). Does not reset the hit/miss
    counters. *)

val hits : unit -> int
val misses : unit -> int
val reset_stats : unit -> unit
