(** General SDD systems via the doubling reduction.

    A symmetric diagonally dominant matrix may carry {e positive}
    off-diagonals, which the Laplacian-based factorizations cannot ingest
    directly. The classic reduction (used by the original RChol [3])
    embeds the SDD system [A x = b] into an SDDM system of twice the
    size:

    - a negative off-diagonal [a_uv < 0] couples [(u, v)] and [(u', v')];
    - a positive off-diagonal [a_uv > 0] couples [(u, v')] and [(u', v)];
    - excess diagonal splits evenly between [u] and its mirror [u'].

    Solving [M y = (b; -b)] gives [x = (y_head - y_tail)/2] exactly when
    [A] is nonsingular (the skew-symmetric part of [y] carries the
    solution). *)

val is_sdd : Sparse.Csc.t -> bool
(** Symmetric with [a_ii >= sum_j |a_ij|] (up to rounding). *)

val reduce : Sparse.Csc.t -> b:Sparse.Vec.t -> Sddm.Problem.t
(** [reduce a ~b] builds the doubled SDDM problem (size [2n]). Raises
    [Invalid_argument] if [a] is not SDD. *)

val recover : Sparse.Vec.t -> Sparse.Vec.t
(** [recover y] maps the doubled solution back: length [2n] -> [n]. *)

val solve :
  ?rtol:float -> ?seed:int -> a:Sparse.Csc.t -> b:Sparse.Vec.t -> unit ->
  Sparse.Vec.t * Solver.result
(** Solve a general SDD system with the PowerRChol pipeline through the
    reduction; returns the recovered solution and the raw solver result
    on the doubled system. *)
