(* Prepared-handle cache keyed by a cheap structural fingerprint, plus the
   versioned session layer for incremental re-solves (ECO flow).

   The factor-once / solve-many call sites (Pipeline, Transient,
   Sensitivity, the CLI batch path) all funnel through here so that two
   independent consumers asking for "powerrchol on this problem" share one
   reordering + factorization. The key deliberately ignores the right-hand
   side: a factorization depends only on the matrix (graph + excess
   diagonal), the solver configuration, and the seed.

   A {!Session.t} extends the cache with a mutable notion of identity: it
   owns an editable matrix, its ordering, an updatable factorization, and
   a monotonically increasing version. Each update re-registers the
   session's handle under the new version, so the cache key space is
   version-aware and stale handles are evicted instead of aliased. *)

type key = {
  config : string;  (* solver name + parameters, e.g. "powerrchol;seed=..." *)
  n : int;
  nnz : int;
  version : int;  (* session edit version; 0 for immutable preparations *)
  checksum : int64;  (* FNV-1a over edges and excess diagonal *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* FNV-1a, 64-bit. Structural but cheap: one pass over the edge list and
   the excess diagonal. Collisions additionally need matching (n, nnz,
   config), and a stale hit still solves *some* SDDM system with a
   verified residual downstream — the blast radius is a wrong answer that
   fails verification, not silent corruption. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix h x = Int64.mul (Int64.logxor h x) fnv_prime

let mix_int h i = mix h (Int64.of_int i)
let mix_float h f = mix h (Int64.bits_of_float f)

let fingerprint ~config problem =
  let h = ref (mix_int fnv_offset (Sddm.Problem.n problem)) in
  Sddm.Graph.iter_edges problem.Sddm.Problem.graph (fun u v w ->
      h := mix_float (mix_int (mix_int !h u) v) w);
  Array.iter (fun d -> h := mix_float !h d) problem.Sddm.Problem.d;
  {
    config;
    n = Sddm.Problem.n problem;
    nnz = Sddm.Problem.nnz problem;
    version = 0;
    checksum = !h;
  }

(* FIFO eviction: entries are pushed front, dropped from the back. The
   cache is small (prepared handles hold O(factor_nnz) floats) and the
   workloads that matter revisit the same handful of systems, so FIFO is
   as good as LRU here and simpler to reason about deterministically. *)
let default_capacity = 8
let capacity = ref default_capacity
let cache : (key * Solver.prepared) list ref = ref []
let stats = { hits = 0; misses = 0; evictions = 0 }

let hits () = stats.hits
let misses () = stats.misses
let evictions () = stats.evictions
let live_handles () = List.length !cache

(* Satellite observability: the four cache statistics as gauges, refreshed
   on every cache operation so any capture sees current values. *)
let publish_stats () =
  if Obs.enabled () then begin
    Obs.gauge "engine/hits" (float_of_int stats.hits);
    Obs.gauge "engine/misses" (float_of_int stats.misses);
    Obs.gauge "engine/evictions" (float_of_int stats.evictions);
    Obs.gauge "engine/live_handles" (float_of_int (List.length !cache))
  end

(* Keep the first [k] entries; everything past them is an eviction. *)
let evict_beyond k entries =
  let rec go k = function
    | [] -> []
    | rest when k = 0 ->
      stats.evictions <- stats.evictions + List.length rest;
      []
    | e :: rest -> e :: go (k - 1) rest
  in
  go k entries

let set_capacity c =
  if c < 0 then invalid_arg "Engine.set_capacity: negative capacity";
  capacity := c;
  cache := evict_beyond c !cache;
  publish_stats ()

let clear () =
  cache := [];
  publish_stats ()

let reset_stats () =
  stats.hits <- 0;
  stats.misses <- 0;
  stats.evictions <- 0

let insert key prepared =
  if !capacity > 0 then begin
    cache := (key, prepared) :: evict_beyond (!capacity - 1) !cache;
    publish_stats ()
  end

(* Drop every version of [config] (a session re-registering under a new
   version, or a closing session); counted as evictions when requested. *)
let remove_config ~count_evictions config =
  let before = List.length !cache in
  cache := List.filter (fun (k, _) -> k.config <> config) !cache;
  if count_evictions then
    stats.evictions <- stats.evictions + (before - List.length !cache);
  publish_stats ()

let lookup key = List.assoc_opt key !cache

let prepare_keyed ~key prepare_fn problem =
  match lookup key with
  | Some prepared ->
    stats.hits <- stats.hits + 1;
    Obs.count "engine/hit" 1;
    publish_stats ();
    prepared
  | None ->
    stats.misses <- stats.misses + 1;
    Obs.count "engine/miss" 1;
    let prepared =
      Obs.span "prepare" (fun () -> prepare_fn problem)
    in
    insert key prepared;
    prepared

let prepare ?(config = "") (solver : Solver.t) problem =
  let config = solver.Solver.name ^ ";" ^ config in
  prepare_keyed ~key:(fingerprint ~config problem) solver.Solver.prepare
    problem

let powerrchol ?buckets ?heavy_factor ?(seed = Solver.default_seed) problem =
  let config =
    Printf.sprintf "powerrchol;seed=%d;buckets=%s;heavy=%s" seed
      (match buckets with Some b -> string_of_int b | None -> "default")
      (match heavy_factor with
       | Some f -> Printf.sprintf "%.17g" f
       | None -> "default")
  in
  prepare_keyed
    ~key:(fingerprint ~config problem)
    (fun problem ->
      Solver.powerrchol_prepare ?buckets ?heavy_factor ~seed problem)
    problem

(* ------------------------------------------------------------------ *)
(* Dense k x k LU with partial pivoting — the Woodbury core of the
   low-rank update rung (k <= low_rank_max, so no blocking needed). *)

let lu_factorize a k =
  let piv = Array.init k (fun i -> i) in
  for col = 0 to k - 1 do
    let best = ref col in
    for r = col + 1 to k - 1 do
      if abs_float a.(r).(col) > abs_float a.(!best).(col) then best := r
    done;
    if !best <> col then begin
      let t = a.(col) in
      a.(col) <- a.(!best);
      a.(!best) <- t;
      let t = piv.(col) in
      piv.(col) <- piv.(!best);
      piv.(!best) <- t
    end;
    let p = a.(col).(col) in
    if not (Float.is_finite p) || abs_float p < 1e-300 then
      failwith "Engine: singular Woodbury core";
    for r = col + 1 to k - 1 do
      let f = a.(r).(col) /. p in
      a.(r).(col) <- f;
      for c = col + 1 to k - 1 do
        a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
      done
    done
  done;
  piv

let lu_solve a piv k b =
  let y = Array.init k (fun i -> b.(piv.(i))) in
  for i = 0 to k - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (a.(i).(j) *. y.(j))
    done
  done;
  for i = k - 1 downto 0 do
    for j = i + 1 to k - 1 do
      y.(i) <- y.(i) -. (a.(i).(j) *. y.(j))
    done;
    y.(i) <- y.(i) /. a.(i).(i)
  done;
  y

(* Woodbury-corrected preconditioner: with [M = (L L^T)^-1] the old
   factor's application and [Delta = U C U^T] the pending matrix change
   restricted to a small support, apply

     N r = M r - (M U) (I + C W)^-1 C U^T (M r),   W = U^T M U

   which is exactly [(M^-1 + Delta)^-1] when the core is nonsingular —
   the old preconditioner corrected for the edit without touching the
   factor. [support]/[delta] are in the factor's (permuted) index space,
   which [M] maps from/to unpermuted coordinates internally, so the
   support indices here are ORIGINAL node ids. *)
let woodbury_precond ~(base : Krylov.Precond.t) ~n ~support ~delta =
  let k = Array.length support in
  let pos = Hashtbl.create (2 * k) in
  Array.iteri (fun q s -> Hashtbl.replace pos s q) support;
  let c = Array.make_matrix k k 0.0 in
  Hashtbl.iter
    (fun (i, j) dv ->
      let qi = Hashtbl.find pos i and qj = Hashtbl.find pos j in
      c.(qi).(qj) <- c.(qi).(qj) +. dv;
      if qi <> qj then c.(qj).(qi) <- c.(qj).(qi) +. dv)
    delta;
  let scratch =
    if base.Krylov.Precond.scratch_len > 0 then
      Some (Sparse.Vec.create base.Krylov.Precond.scratch_len)
    else None
  in
  let apply_base r z =
    match scratch with
    | Some scratch -> base.Krylov.Precond.apply ~scratch r z
    | None -> base.Krylov.Precond.apply r z
  in
  (* columns of M U: one base application per support node *)
  let mu =
    Array.map
      (fun s ->
        let e = Sparse.Vec.create n in
        Sparse.Vec.set e s 1.0;
        let z = Sparse.Vec.create n in
        apply_base e z;
        z)
      support
  in
  (* core = I + C W, W(i,j) = (M U)(support_i, j) *)
  let core = Array.make_matrix k k 0.0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (c.(i).(l) *. Sparse.Vec.get mu.(j) support.(l))
      done;
      core.(i).(j) <- (if i = j then 1.0 else 0.0) +. !acc
    done
  done;
  let piv = lu_factorize core k in
  let rhs = Array.make k 0.0 in
  let apply r z =
    apply_base r z;
    for q = 0 to k - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (c.(q).(l) *. Sparse.Vec.get z support.(l))
      done;
      rhs.(q) <- !acc
    done;
    let s = lu_solve core piv k rhs in
    for q = 0 to k - 1 do
      let col = mu.(q) and sq = s.(q) in
      if sq <> 0.0 then
        for i = 0 to n - 1 do
          Sparse.Vec.set z i (Sparse.Vec.get z i -. (sq *. Sparse.Vec.get col i))
        done
    done
  in
  Krylov.Precond.of_apply
    ~name:(base.Krylov.Precond.name ^ "+woodbury")
    ~nnz:(base.Krylov.Precond.nnz + (k * k))
    apply

(* ------------------------------------------------------------------ *)
(* Versioned sessions. *)

module Session = struct
  type rung = Rhs_only | Local | Low_rank | Full

  let rung_name = function
    | Rhs_only -> "rhs-only"
    | Local -> "local"
    | Low_rank -> "low-rank"
    | Full -> "full"

  type update_report = {
    version : int;
    rung : rung;
    columns : int;
    support : int;
    skipped : Robust.Fallback.attempt list;
    t_update : float;
    changes : Sddm.Edit.change list;
  }

  type t = {
    id : int;
    seed : int;
    buckets : int;
    heavy_factor : float;
    max_fraction : float;
    low_rank_max : int;
    state : Sddm.Edit.state;
    mutable version : int;
    mutable perm : Sparse.Perm.t;
    mutable pinv : int array;
    mutable upd : Factor.Rand_chol.updatable;
    mutable prepared : Solver.prepared;
    mutable base_precond : Krylov.Precond.t;
        (* the factor's own preconditioner, without any Woodbury wrapper;
           in-place refactors keep it valid, so restoring it is free *)
    pending : (int * int, float) Hashtbl.t;
        (* accumulated (A_current - A_factor) in ORIGINAL node space,
           keyed (i, j) with i <= j; nonempty exactly while the factor
           lags the matrix (low-rank rung in force) *)
  }

  let next_id = ref 0

  let session_config s =
    Printf.sprintf "session=%d;powerrchol;seed=%d;buckets=%d;heavy=%.17g"
      s.id s.seed s.buckets s.heavy_factor

  let register s =
    let key =
      {
        config = session_config s;
        n = Sddm.Problem.n (Sddm.Edit.problem s.state);
        nnz = Sddm.Problem.nnz (Sddm.Edit.problem s.state);
        version = s.version;
        checksum = Int64.of_int s.id;
      }
    in
    (* one live handle per session: the previous version's entry is stale
       by construction, so replacing it is an eviction, not a leak *)
    remove_config ~count_evictions:(s.version > 0) (session_config s);
    insert key s.prepared

  (* The session's preparation: partitioned ordering + LT-RChol
     factorization, identical (bit-for-bit, same seed discipline) to
     [Solver.powerrchol_prepare], but through the updatable factorization
     so later edits can re-eliminate in place. *)
  let build ~seed ~buckets ~heavy_factor problem =
    let g = problem.Sddm.Problem.graph in
    let t0 = Unix.gettimeofday () in
    let perm =
      Obs.span "reorder" (fun () ->
          Ordering.Partitioned.order ~heavy_factor g)
    in
    let t1 = Unix.gettimeofday () in
    let upd =
      Obs.span "factor" (fun () ->
          let gp = Sddm.Graph.permute g perm in
          let d = problem.Sddm.Problem.d in
          let dp = Array.init (Array.length perm) (fun k -> d.(perm.(k))) in
          let rng = Rng.create seed in
          Factor.Lt_rchol.factorize_updatable ~buckets ~rng gp ~d:dp)
    in
    let t2 = Unix.gettimeofday () in
    let l = Factor.Rand_chol.factor upd in
    let prepared =
      Solver.make_prepared ~solver_name:"powerrchol" problem
        ~precond:(Krylov.Precond.of_factor ~name:"powerrchol" ~perm l)
        ~t_reorder:(t1 -. t0) ~t_precond:(t2 -. t1)
        ~factor_nnz:(Factor.Lower.nnz l)
    in
    (perm, upd, prepared)

  let create ?(buckets = Factor.Lt_rchol.default_buckets)
      ?(heavy_factor = Solver.default_heavy_factor)
      ?(seed = Solver.default_seed) ?(max_fraction = 0.25)
      ?(low_rank_max = 16) problem =
    let state = Sddm.Edit.of_problem problem in
    let perm, upd, prepared =
      build ~seed ~buckets ~heavy_factor (Sddm.Edit.problem state)
    in
    incr next_id;
    let s =
      {
        id = !next_id;
        seed;
        buckets;
        heavy_factor;
        max_fraction;
        low_rank_max;
        state;
        version = 0;
        perm;
        pinv = Sparse.Perm.inverse perm;
        upd;
        prepared;
        base_precond = prepared.Solver.precond;
        pending = Hashtbl.create 32;
      }
    in
    register s;
    s

  let id s = s.id
  let version s = s.version
  let problem s = Sddm.Edit.problem s.state
  let prepared s = s.prepared

  let close s = remove_config ~count_evictions:false (session_config s)

  let add_pending s i j dv =
    let key = (min i j, max i j) in
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt s.pending key) in
    let next = cur +. dv in
    if next = 0.0 then Hashtbl.remove s.pending key
    else Hashtbl.replace s.pending key next

  let pending_support s =
    let nodes = Hashtbl.create 32 in
    Hashtbl.iter
      (fun (i, j) _ ->
        Hashtbl.replace nodes i ();
        Hashtbl.replace nodes j ())
      s.pending;
    let support = Array.make (Hashtbl.length nodes) 0 in
    let q = ref 0 in
    Hashtbl.iter
      (fun i () ->
        support.(!q) <- i;
        incr q)
      nodes;
    Array.sort compare support;
    support

  (* Full re-prepare: rebuild the problem from the edited edge arrays
     (zero-weight edges dropped — exactly what a from-scratch prepare of
     the edited system sees), reorder, refactorize. The PCG workspace is
     carried over so warm-started iteration state survives the swap. *)
  let full_reprepare s ~generation_before =
    let p =
      if Sddm.Edit.generation s.state <> generation_before then
        (* a pattern-growing edit already rebuilt and adopted the problem *)
        Sddm.Edit.problem s.state
      else Sddm.Edit.rebuild s.state
    in
    let perm, upd, prepared =
      build ~seed:s.seed ~buckets:s.buckets ~heavy_factor:s.heavy_factor p
    in
    s.perm <- perm;
    s.pinv <- Sparse.Perm.inverse perm;
    s.upd <- upd;
    s.prepared <-
      { prepared with Solver.workspace = s.prepared.Solver.workspace };
    s.base_precond <- s.prepared.Solver.precond;
    Hashtbl.reset s.pending

  (* Mirror one value-only change into the updatable factorization
     (permuted space) and the pending-delta ledger (original space).
     Returns [false] when the edited edge is missing from the frozen
     pattern — the caller must escalate to a full re-prepare. *)
  let mirror s change =
    match change with
    | Sddm.Edit.No_change | Sddm.Edit.Rhs_changed _ -> true
    | Sddm.Edit.Pattern_grew _ -> false
    | Sddm.Edit.Edge_changed { u; v; from_w; to_w } -> (
      let pu = s.pinv.(u) and pv = s.pinv.(v) in
      match Factor.Rand_chol.find_edge s.upd pu pv with
      | None -> false
      | Some slot ->
        Factor.Rand_chol.set_edge_weight s.upd slot to_w;
        let dw = to_w -. from_w in
        add_pending s u u dw;
        add_pending s v v dw;
        add_pending s u v (-.dw);
        true)
    | Sddm.Edit.Excess_changed { node; from_s; to_s } ->
      Factor.Rand_chol.set_excess s.upd s.pinv.(node) to_s;
      add_pending s node node (to_s -. from_s);
      true

  let update s edits =
    let t0 = Unix.gettimeofday () in
    (* validate the whole batch before touching anything: an invalid edit
       mid-list must not leave the session half-mutated *)
    let n = Sddm.Problem.n (Sddm.Edit.problem s.state) in
    List.iter (Sddm.Edit.validate ~n) edits;
    let generation_before = Sddm.Edit.generation s.state in
    let changes = Sddm.Edit.apply_all s.state edits in
    s.version <- s.version + 1;
    let matrix_changed =
      List.exists
        (function
          | Sddm.Edit.Edge_changed _ | Sddm.Edit.Excess_changed _
          | Sddm.Edit.Pattern_grew _ -> true
          | Sddm.Edit.No_change | Sddm.Edit.Rhs_changed _ -> false)
        changes
    in
    let skip = Robust.Fallback.skipped in
    let rung, columns, support, skipped =
      if not matrix_changed then (Rhs_only, 0, 0, [])
      else if
        List.exists
          (function Sddm.Edit.Pattern_grew _ -> true | _ -> false)
          changes
        || not (List.for_all (mirror s) changes)
      then begin
        (* the frozen pattern cannot represent the edit *)
        let reason = "sparsity pattern changed" in
        full_reprepare s ~generation_before;
        ( Full,
          0,
          0,
          [ skip ~rung:"local" ~reason; skip ~rung:"low-rank" ~reason ] )
      end
      else begin
        match
          Factor.Rand_chol.refactor s.upd ~max_fraction:s.max_fraction
        with
        | Factor.Rand_chol.Refactored { columns } ->
          (* the factor now matches the edited matrix: drop any Woodbury
             wrapper and return to the factor's own preconditioner (the
             in-place value updates kept it valid) *)
          Hashtbl.reset s.pending;
          s.prepared <-
            { s.prepared with Solver.precond = s.base_precond };
          (Local, columns, 0, [])
        | Factor.Rand_chol.Too_large { limit } ->
          let sup = pending_support s in
          let k = Array.length sup in
          let local_skip =
            skip ~rung:"local"
              ~reason:
                (Printf.sprintf "ancestor closure exceeds %d columns" limit)
          in
          if k > 0 && k <= s.low_rank_max then begin
            match
              woodbury_precond ~base:s.base_precond
                ~n:(Sddm.Problem.n (Sddm.Edit.problem s.state))
                ~support:sup ~delta:s.pending
            with
            | wb ->
              s.prepared <- { s.prepared with Solver.precond = wb };
              (Low_rank, 0, k, [ local_skip ])
            | exception Failure _ ->
              full_reprepare s ~generation_before;
              ( Full,
                0,
                k,
                [
                  local_skip;
                  skip ~rung:"low-rank" ~reason:"singular Woodbury core";
                ] )
          end
          else begin
            full_reprepare s ~generation_before;
            ( Full,
              0,
              k,
              [
                local_skip;
                skip ~rung:"low-rank"
                  ~reason:
                    (Printf.sprintf "edit support %d exceeds %d" k
                       s.low_rank_max);
              ] )
          end
        | exception Factor.Rand_chol.Breakdown { column; pivot } ->
          (* the in-place re-elimination died mid-sweep; the factor holds
             a mix of old and new values, so only a full rebuild is safe *)
          let reason =
            Printf.sprintf "refactor breakdown: pivot %g at column %d" pivot
              column
          in
          full_reprepare s ~generation_before;
          ( Full,
            0,
            0,
            [ skip ~rung:"local" ~reason; skip ~rung:"low-rank" ~reason ] )
      end
    in
    register s;
    Obs.count "engine/update" 1;
    Obs.count (Printf.sprintf "engine/update/%s" (rung_name rung)) 1;
    {
      version = s.version;
      rung;
      columns;
      support;
      skipped;
      t_update = Unix.gettimeofday () -. t0;
      changes;
    }

  let solve ?rtol ?max_iter ?deadline ?x0 ?b s =
    Solver.solve_prepared ?rtol ?max_iter ?deadline ?x0
      ~b:(match b with
          | Some b -> b
          | None -> (Sddm.Edit.problem s.state).Sddm.Problem.b)
      s.prepared
end

let update = Session.update
