(* Prepared-handle cache keyed by a cheap structural fingerprint.

   The factor-once / solve-many call sites (Pipeline, Transient,
   Sensitivity, the CLI batch path) all funnel through here so that two
   independent consumers asking for "powerrchol on this problem" share one
   reordering + factorization. The key deliberately ignores the right-hand
   side: a factorization depends only on the matrix (graph + excess
   diagonal), the solver configuration, and the seed. *)

type key = {
  config : string;  (* solver name + parameters, e.g. "powerrchol;seed=..." *)
  n : int;
  nnz : int;
  checksum : int64;  (* FNV-1a over edges and excess diagonal *)
}

type stats = { mutable hits : int; mutable misses : int }

(* FNV-1a, 64-bit. Structural but cheap: one pass over the edge list and
   the excess diagonal. Collisions additionally need matching (n, nnz,
   config), and a stale hit still solves *some* SDDM system with a
   verified residual downstream — the blast radius is a wrong answer that
   fails verification, not silent corruption. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix h x = Int64.mul (Int64.logxor h x) fnv_prime

let mix_int h i = mix h (Int64.of_int i)
let mix_float h f = mix h (Int64.bits_of_float f)

let fingerprint ~config problem =
  let h = ref (mix_int fnv_offset (Sddm.Problem.n problem)) in
  Sddm.Graph.iter_edges problem.Sddm.Problem.graph (fun u v w ->
      h := mix_float (mix_int (mix_int !h u) v) w);
  Array.iter (fun d -> h := mix_float !h d) problem.Sddm.Problem.d;
  {
    config;
    n = Sddm.Problem.n problem;
    nnz = Sddm.Problem.nnz problem;
    checksum = !h;
  }

(* FIFO eviction: entries are pushed front, dropped from the back. The
   cache is small (prepared handles hold O(factor_nnz) floats) and the
   workloads that matter revisit the same handful of systems, so FIFO is
   as good as LRU here and simpler to reason about deterministically. *)
let default_capacity = 8
let capacity = ref default_capacity
let cache : (key * Solver.prepared) list ref = ref []
let stats = { hits = 0; misses = 0 }

let set_capacity c =
  if c < 0 then invalid_arg "Engine.set_capacity: negative capacity";
  capacity := c;
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest -> e :: take (k - 1) rest
  in
  cache := take c !cache

let clear () = cache := []

let hits () = stats.hits
let misses () = stats.misses

let reset_stats () =
  stats.hits <- 0;
  stats.misses <- 0

let insert key prepared =
  if !capacity > 0 then begin
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | e :: rest -> e :: take (k - 1) rest
    in
    cache := (key, prepared) :: take (!capacity - 1) !cache
  end

let lookup key = List.assoc_opt key !cache

let prepare_keyed ~key prepare_fn problem =
  match lookup key with
  | Some prepared ->
    stats.hits <- stats.hits + 1;
    Obs.count "engine/hit" 1;
    prepared
  | None ->
    stats.misses <- stats.misses + 1;
    Obs.count "engine/miss" 1;
    let prepared =
      Obs.span "prepare" (fun () -> prepare_fn problem)
    in
    insert key prepared;
    prepared

let prepare ?(config = "") (solver : Solver.t) problem =
  let config = solver.Solver.name ^ ";" ^ config in
  prepare_keyed ~key:(fingerprint ~config problem) solver.Solver.prepare
    problem

let powerrchol ?buckets ?heavy_factor ?(seed = Solver.default_seed) problem =
  let config =
    Printf.sprintf "powerrchol;seed=%d;buckets=%s;heavy=%s" seed
      (match buckets with Some b -> string_of_int b | None -> "default")
      (match heavy_factor with
       | Some f -> Printf.sprintf "%.17g" f
       | None -> "default")
  in
  prepare_keyed
    ~key:(fingerprint ~config problem)
    (fun problem ->
      Solver.powerrchol_prepare ?buckets ?heavy_factor ~seed problem)
    problem
