(** ECO (engineering change order) edit scenarios for generated grids.

    Late-stage physical design iterates: remove a via, move a pad, widen
    a wire, re-bin a load — then re-check IR drop. This module turns a
    {!Generate} grid into a deterministic stream of such edits, the
    workload behind the edit-storm bench and the incremental re-solve
    tests ({!Engine.Session} in the core library).

    Determinism contract: scenario [i] is derived from [Rng.keyed ~seed i]
    alone — no ambient state, no dependence on how many scenarios are
    built or in which order, so a storm sliced across domains or replayed
    one scenario at a time produces byte-identical edits. *)

type kind =
  | Via_removal
      (** scale a layer-crossing via down by 1e-6 — electrically removed,
          pattern (and SPD margin) preserved *)
  | Pad_relocation
      (** zero one pad's excess conductance, re-create it at a padless
          top-layer node; skipped (degrades to wire strengthening) when
          the grid has fewer than two pads *)
  | Wire_strengthen  (** scale a bottom-layer segment by 4 (wire widening) *)
  | Load_shift
      (** move one load current to another load site — a pure
          right-hand-side edit *)

val kind_name : kind -> string

val all_kinds : kind list
(** The default round-robin: via removal, pad relocation, wire
    strengthening, load shift, repeating. *)

type scenario = {
  index : int;
  kind : kind;  (** actual kind after degradation, not the requested one *)
  label : string;  (** human-readable one-liner for logs *)
  edits : Sddm.Edit.t list;  (** applied as one update batch *)
}

val storm :
  ?seed:int -> ?kinds:kind list -> spec:Generate.spec -> Generate.circuit ->
  count:int -> scenario array
(** [storm ~spec circuit ~count] builds [count] scenarios over the
    circuit's classified element pools (vias, bottom-layer wires, pads,
    loads). [kinds] (default {!all_kinds}) round-robins by scenario
    index; [seed] defaults to 1. [spec] must be the spec that generated
    [circuit] — the bottom/top layer split is recovered from its
    dimensions. *)

val max_support : scenario array -> int
(** Largest number of distinct matrix nodes any single scenario touches —
    the bench gate uses it to assert edits stay local (≤ 16 nodes). *)
