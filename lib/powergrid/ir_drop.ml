type report = {
  max_drop : float;
  mean_drop : float;
  p99_drop : float;
  worst_nodes : (int * float) array;
  violations : int;
}

let analyze ?(budget = 0.05) ?(top = 10) (drops : Sparse.Vec.t) =
  let n = Sparse.Vec.length drops in
  assert (n > 0);
  let sorted = Array.init n (fun i -> (i, drops.{i})) in
  Array.sort (fun (_, a) (_, b) -> compare b a) sorted;
  let mean = Sparse.Vec.mean drops in
  let p99_index = min (n - 1) (n / 100) in
  let violations = ref 0 in
  Sparse.Vec.iteri (fun _ v -> if v > budget then incr violations) drops;
  {
    max_drop = snd sorted.(0);
    mean_drop = mean;
    p99_drop = snd sorted.(p99_index);
    worst_nodes = Array.sub sorted 0 (min top n);
    violations = !violations;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>max drop   : %.4f V@,mean drop  : %.4f V@,p99 drop   : %.4f V@,\
     violations : %d@,worst nodes:@,"
    r.max_drop r.mean_drop r.p99_drop r.violations;
  Array.iter
    (fun (node, v) -> Format.fprintf fmt "  node %-8d %.4f V@," node v)
    r.worst_nodes;
  Format.fprintf fmt "@]"
