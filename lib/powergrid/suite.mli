(** The named benchmark suite mirroring the paper's evaluation.

    Cases 1–16 stand in for the IBM (`ibmpg3..8`) and THU (`thupg1..10`)
    power grids of Tables 1–3; cases 17–28 stand in for the SuiteSparse
    SDDM matrices of Table 4 (see DESIGN.md for the substitution table).
    All cases are generated deterministically; sizes default to roughly
    1/40–1/150 of the paper's (which ran up to 6e7 nodes on a server) and
    scale with the [scale] argument — the bench harness wires it to the
    [BENCH_SCALE] environment variable. *)

type case = {
  id : string;  (** e.g. "pg07" or "youtube" *)
  analog_of : string;  (** the paper's case this mirrors, e.g. "thupg1" *)
  build : unit -> Sddm.Problem.t;  (** deterministic; safe to call twice *)
}

val power_grid_cases : ?scale:float -> unit -> case array
(** The 16 power-grid cases. [scale] multiplies node counts (default 1). *)

val other_cases : ?scale:float -> unit -> case array
(** The 12 Table-4 analogs. *)

val all_cases : ?scale:float -> unit -> case array
(** Concatenation of the above, in table order (28 cases). *)

val find : ?scale:float -> string -> case
(** Look up a case by [id] or by [analog_of] name. Raises [Not_found]. *)

val scale_case : ?seed:int -> target_nodes:int -> unit -> case
(** The Fig. 3 scale case: the smallest square power grid with at least
    [target_nodes] unknowns, built by the chunked generator (safe to
    request 1e6+ nodes). [id] is ["scale-<target>"]. *)

val random_rhs : Sddm.Problem.t -> seed:int -> Sddm.Problem.t
(** Replace the right-hand side with a uniform random vector (used for the
    non-power-grid cases where the paper solves against generic loads). *)
