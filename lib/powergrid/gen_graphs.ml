let mesh2d ?(weight = 1.0) ~nx ~ny () =
  let n = nx * ny in
  let edges = ref [] in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = (y * nx) + x in
      if x + 1 < nx then edges := (i, i + 1, weight) :: !edges;
      if y + 1 < ny then edges := (i, i + nx, weight) :: !edges
    done
  done;
  Sddm.Graph.create ~n ~edges:(Array.of_list !edges)

let mesh2d_9pt ?(weight = 1.0) ~nx ~ny () =
  let n = nx * ny in
  let diag_w = weight /. sqrt 2.0 in
  let edges = ref [] in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = (y * nx) + x in
      if x + 1 < nx then edges := (i, i + 1, weight) :: !edges;
      if y + 1 < ny then edges := (i, i + nx, weight) :: !edges;
      if x + 1 < nx && y + 1 < ny then
        edges := (i, i + nx + 1, diag_w) :: !edges;
      if x > 0 && y + 1 < ny then edges := (i, i + nx - 1, diag_w) :: !edges
    done
  done;
  Sddm.Graph.create ~n ~edges:(Array.of_list !edges)

let mesh3d ?(weight = 1.0) ~nx ~ny ~nz () =
  let n = nx * ny * nz in
  let idx x y z = (z * nx * ny) + (y * nx) + x in
  let edges = ref [] in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let i = idx x y z in
        if x + 1 < nx then edges := (i, idx (x + 1) y z, weight) :: !edges;
        if y + 1 < ny then edges := (i, idx x (y + 1) z, weight) :: !edges;
        if z + 1 < nz then edges := (i, idx x y (z + 1), weight) :: !edges
      done
    done
  done;
  Sddm.Graph.create ~n ~edges:(Array.of_list !edges)

let random_spanning_backbone rng g =
  let n = Sddm.Graph.n_vertices g in
  let labels, n_comp = Sddm.Graph.connected_components g in
  if n_comp <= 1 then g
  else begin
    (* pick one representative per component and chain them randomly *)
    let reps = Array.make n_comp (-1) in
    for v = 0 to n - 1 do
      if reps.(labels.(v)) < 0 then reps.(labels.(v)) <- v
    done;
    Rng.shuffle rng reps;
    let w = max (Sddm.Graph.average_weight g) 1e-6 in
    let extra =
      Array.init (n_comp - 1) (fun k -> (reps.(k), reps.(k + 1), w))
    in
    let all =
      Array.append extra
        (Array.init (Sddm.Graph.n_edges g) (fun e -> Sddm.Graph.edge g e))
    in
    Sddm.Graph.create ~n ~edges:all
  end

let power_law ~n ~avg_degree ~alpha ~seed =
  let rng = Rng.create seed in
  (* Chung–Lu: edge (u,v) appears with prob ~ w_u w_v / W. Sample via the
     weighted "fitness" list trick: draw both endpoints proportionally to
     their weight, m = avg_degree * n / 2 times. *)
  let weights = Array.init n (fun _ -> Rng.pareto rng ~alpha ~x_min:1.0) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  (* cumulative table for O(log n) sampling *)
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. weights.(i);
    cum.(i) <- !acc
  done;
  let draw () =
    let t = Rng.float rng *. total in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) >= t then bisect lo mid else bisect (mid + 1) hi
    in
    bisect 0 (n - 1)
  in
  let m = int_of_float (avg_degree *. float_of_int n /. 2.0) in
  let edges = ref [] in
  let count = ref 0 in
  while !count < m do
    let u = draw () and v = draw () in
    if u <> v then begin
      edges := (u, v, 1.0) :: !edges;
      incr count
    end
  done;
  let g =
    Sddm.Graph.coalesce
      (Sddm.Graph.create ~n ~edges:(Array.of_list !edges))
  in
  random_spanning_backbone rng g

let community ~n ~communities ~p_in ~inter_degree ~seed =
  let rng = Rng.create seed in
  assert (communities >= 1 && communities <= n);
  let edges = ref [] in
  (* intra-community: Erdos-Renyi blocks; boundaries by rounding so block
     sizes differ by at most one (no giant remainder block) *)
  for c = 0 to communities - 1 do
    let lo = c * n / communities in
    let hi = (((c + 1) * n) / communities) - 1 in
    (* expected edges: p_in * k(k-1)/2; sample that many random pairs *)
    let k = hi - lo + 1 in
    let target =
      int_of_float (p_in *. float_of_int (k * (k - 1)) /. 2.0)
    in
    for _ = 1 to target do
      let u = lo + Rng.int rng k and v = lo + Rng.int rng k in
      if u <> v then edges := (u, v, 1.0) :: !edges
    done
  done;
  (* inter-community *)
  let inter = int_of_float (inter_degree *. float_of_int n /. 2.0) in
  for _ = 1 to inter do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v, 0.5) :: !edges
  done;
  let g =
    Sddm.Graph.coalesce
      (Sddm.Graph.create ~n ~edges:(Array.of_list !edges))
  in
  random_spanning_backbone rng g

let geometric ~n ~radius ~seed =
  let rng = Rng.create seed in
  let xs = Array.init n (fun _ -> Rng.float rng) in
  let ys = Array.init n (fun _ -> Rng.float rng) in
  (* cell grid of pitch radius *)
  let cells = max 1 (int_of_float (1.0 /. radius)) in
  let cell_of x = min (cells - 1) (int_of_float (x *. float_of_int cells)) in
  let grid = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    let key = (cell_of xs.(i), cell_of ys.(i)) in
    Hashtbl.replace grid key
      (i :: (try Hashtbl.find grid key with Not_found -> []))
  done;
  let edges = ref [] in
  let r2 = radius *. radius in
  for i = 0 to n - 1 do
    let ci = cell_of xs.(i) and cj = cell_of ys.(i) in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt grid (ci + dx, cj + dy) with
        | None -> ()
        | Some others ->
          List.iter
            (fun j ->
              if j > i then begin
                let ddx = xs.(i) -. xs.(j) and ddy = ys.(i) -. ys.(j) in
                let d2 = (ddx *. ddx) +. (ddy *. ddy) in
                if d2 <= r2 && d2 > 0.0 then
                  edges := (i, j, 1.0 /. sqrt d2) :: !edges
              end)
            others
      done
    done
  done;
  let g =
    Sddm.Graph.coalesce
      (Sddm.Graph.create ~n ~edges:(Array.of_list !edges))
  in
  random_spanning_backbone rng g
