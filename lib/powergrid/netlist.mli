(** SPICE-subset netlist reader/writer in the style of the IBM power grid
    benchmarks: [R]/[I]/[V]/[C] cards, ground node ["0"], [.op]/[.end]
    directives, [*] comments, engineering suffixes (k, meg, m, u, n, p).
    Capacitors are carried through for transient analysis and ignored in
    the DC formulation.

    Voltage sources must have one terminal grounded (that is how the IBM
    grids model VDD pads); the driven nodes are eliminated as Dirichlet
    boundary conditions when building the SDDM system, so the unknowns are
    the free node voltages. *)

exception Parse_error of string

type t

val parse_string : string -> t
val parse_file : string -> t

val n_resistors : t -> int
val n_current_sources : t -> int
val n_voltage_sources : t -> int
val n_capacitors : t -> int

type problem_with_names = {
  problem : Sddm.Problem.t;
  node_names : string array;  (** unknown index -> netlist node name *)
  fixed_voltage : (string * float) list;  (** eliminated nodes *)
}

val grounded_capacitances : t -> (string * float) list
(** Capacitors with one grounded terminal, as (node name, farads); the
    transient front end maps these onto unknown indices. Capacitors are
    ignored by DC {!to_problem}. *)

val to_problem : ?name:string -> t -> problem_with_names
(** Build [A v = b] over the free nodes (voltage formulation). Raises
    [Parse_error] on unsupported topology: a voltage source with both
    terminals ungrounded, conflicting sources on one node, nonpositive
    resistance, or a floating free component (no DC path to any fixed
    node). *)

val write_circuit : out_channel -> Generate.circuit -> unit
(** Emit a generated power grid as a netlist ([vdd] rail driven by one
    voltage source; pads as resistors to the rail; loads as current sources
    to ground). *)

val write_circuit_file : string -> Generate.circuit -> unit

val write_dual_circuit : out_channel -> Generate.dual -> unit
(** Emit a dual-rail netlist in the style of the IBM power-grid
    benchmarks: VDD-net nodes are named [nV<i>], GND-net nodes [nG<i>],
    loads are current sources {e between} the two nets, VDD pads resistors
    to the driven [vdd] rail, GND pads resistors to node ["0"]. Parsing it
    back with {!to_problem} yields one block-diagonal SDDM system holding
    both nets. *)

val write_dual_circuit_file : string -> Generate.dual -> unit
