(** Synthetic multi-layer power-grid generator.

    Produces DC power-grid analysis problems with the structural features of
    the IBM/THU benchmark grids that drive solver behavior:

    - a fine bottom-layer mesh (M1/M2 routing pair) with moderate segment
      conductance and small random variation;
    - a coarser, thicker top-layer mesh with higher conductance;
    - via connections between the layers with {e much} larger conductance —
      the heavy edges the paper's Alg. 4 reordering targets;
    - VDD pads on the top layer (excess diagonal [D]);
    - current-source loads on a random subset of bottom-layer nodes
      (the right-hand side);
    - a fraction of randomly missing segments (routing blockages), which
      keeps the mesh irregular without disconnecting it.

    The formulation is the IR-drop one: [A x = b] with [A = L + D_pads] and
    [b] the load currents, so [x] is the per-node voltage drop. Everything
    is deterministic given [spec.seed]. *)

type spec = {
  nx : int;  (** bottom-layer nodes per row *)
  ny : int;  (** bottom-layer nodes per column *)
  coarse_pitch : int;  (** top-layer pitch in bottom-layer cells (>= 2) *)
  wire_conductance : float;  (** bottom-layer segment conductance (S) *)
  top_conductance : float;  (** top-layer segment conductance (S) *)
  via_conductance : float;  (** via conductance (S); heavy edges *)
  pad_pitch : int;  (** a pad every [pad_pitch] top-layer nodes (>= 1) *)
  pad_conductance : float;  (** pad-to-VDD conductance (S) *)
  load_fraction : float;  (** fraction of bottom nodes drawing current *)
  load_max : float;  (** maximum load current (A) *)
  jitter : float;  (** relative conductance variation in [0, 1) *)
  missing_fraction : float;  (** fraction of bottom segments removed *)
  region_decades : float;
      (** regional wire-width heterogeneity: bottom-layer segment
          conductance is scaled per routing block by a log-uniform factor
          spanning this many decades (real grids mix wire widths across
          blocks; 0 disables) *)
  region_block : int;  (** routing-block side length in grid cells *)
  seed : int;
}

val default : nx:int -> ny:int -> seed:int -> spec
(** Engineering-plausible defaults: 1 S segments, 5 S top metal, 100 S
    vias, pads every 8 top nodes at 1000 S, 10% loads up to 10 mA, 10%
    jitter, 2% missing segments, 2.5 decades of regional wire-width
    variation over 16-cell blocks, and ~1 pF of decap at every load. *)

val generate : spec -> Sddm.Problem.t
(** Build the problem. The name encodes nx, ny and the seed.

    This is the chunked path: circuit elements stream out of
    {!iter_circuit} directly into flat edge arrays and the [d]/[b]
    vectors, so no boxed per-element representation is ever built and
    1e6+-node grids fit in RAM. The result is identical to
    [circuit_to_problem ~name (generate_circuit spec)]. *)

val iter_circuit :
  spec ->
  res:(int -> int -> float -> unit) ->
  pad:(int -> float -> unit) ->
  load:(int -> float -> unit) ->
  cap:(int -> float -> unit) ->
  unit
(** [iter_circuit spec ~res ~pad ~load ~cap] emits every circuit element
    exactly once, in a fixed deterministic order: [res u v ohms] per
    resistor (repair stitches last), [pad node ohms], [load node amps],
    [cap node farads]. The streamed building block behind {!generate} and
    the scale bench — callers consume elements without the generator ever
    holding the grid. *)

val node_count : spec -> int
(** Number of unknowns [generate] will produce (both layers). *)

type circuit = {
  n_nodes : int;
  resistors : (int * int * float) array;  (** (node, node, ohms) *)
  pads : (int * float) array;  (** (node, pad resistance to VDD) *)
  loads : (int * float) array;  (** (node, amps drawn) *)
  caps : (int * float) array;
      (** (node, farads to ground): decoupling capacitance, used by
          transient analysis and ignored by DC *)
  vdd : float;
}
(** Explicit circuit view, for netlist export. *)

val generate_circuit : spec -> circuit
(** The same grid as {!generate}, as circuit elements. *)

val circuit_to_problem : name:string -> circuit -> Sddm.Problem.t
(** Stamp a circuit into the drop-formulation SDDM system (pads become
    excess diagonal, loads become the right-hand side). *)

(** {1 Dual-rail (VDD + GND) grids}

    Real designs have both a supply grid and a return grid; every load
    draws its current from the VDD net and returns it through the GND net,
    so total rail collapse at a cell is (VDD drop + ground bounce). With
    ideal pads the two nets decouple into two independent SDDM systems
    driven by the same load currents. *)

type dual = {
  vdd_grid : circuit;  (** pads tie to the VDD rail *)
  gnd_grid : circuit;  (** same loads, pads tie to ground *)
}

val generate_dual : spec -> dual
(** Two structurally independent grids (different blockage/jitter
    randomness) carrying identical load currents at the same bottom-mesh
    positions. *)

val dual_to_problems : dual -> Sddm.Problem.t * Sddm.Problem.t
(** (vdd-drop problem, ground-bounce problem), both in the drop
    formulation. *)
