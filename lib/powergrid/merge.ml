type t = {
  problem : Sddm.Problem.t;
  representative : int array;
  n_merged_edges : int;
}

let median_weight g =
  let m = Sddm.Graph.n_edges g in
  if m = 0 then 0.0
  else begin
    let ws = Array.init m (fun e -> let _, _, w = Sddm.Graph.edge g e in w) in
    Array.sort compare ws;
    ws.(m / 2)
  end

let merge ?(factor = 200.0) p =
  let g = p.Sddm.Problem.graph in
  let n = Sddm.Graph.n_vertices g in
  let m = Sddm.Graph.n_edges g in
  let threshold = factor *. median_weight g in
  (* union-find over heavy edges *)
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let n_merged = ref 0 in
  for e = 0 to m - 1 do
    let u, v, w = Sddm.Graph.edge g e in
    if w > threshold then begin
      let ru = find u and rv = find v in
      if ru <> rv then begin
        parent.(max ru rv) <- min ru rv;
        incr n_merged
      end
    end
  done;
  (* compact representative ids *)
  let representative = Array.make n (-1) in
  let next_id = ref 0 in
  for i = 0 to n - 1 do
    let r = find i in
    if representative.(r) < 0 then begin
      representative.(r) <- !next_id;
      incr next_id
    end;
    representative.(i) <- representative.(r)
  done;
  let nc = !next_id in
  (* contracted graph: drop intra-group edges, sum the rest *)
  let edges = ref [] in
  for e = 0 to m - 1 do
    let u, v, w = Sddm.Graph.edge g e in
    let cu = representative.(u) and cv = representative.(v) in
    if cu <> cv then edges := (cu, cv, w) :: !edges
  done;
  let graph =
    Sddm.Graph.coalesce
      (Sddm.Graph.create ~n:nc ~edges:(Array.of_list !edges))
  in
  let d = Array.make nc 0.0 in
  let b = Sparse.Vec.create nc in
  let pb = p.Sddm.Problem.b in
  for i = 0 to n - 1 do
    let c = representative.(i) in
    d.(c) <- d.(c) +. p.Sddm.Problem.d.(i);
    b.{c} <- b.{c} +. pb.{i}
  done;
  let name = p.Sddm.Problem.name ^ "+merged" in
  {
    problem = Sddm.Problem.of_graph ~name ~graph ~d ~b;
    representative;
    n_merged_edges = !n_merged;
  }

let expand t (xc : Sparse.Vec.t) =
  Sparse.Vec.init (Array.length t.representative) (fun i ->
      xc.{t.representative.(i)})
