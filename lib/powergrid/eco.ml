(* ECO edit-scenario generator.

   Turns a generated grid into a deterministic stream of engineering
   change orders — the edit vocabulary of incremental re-solve
   benchmarks. Each scenario draws from its own [Rng.keyed] stream, so
   scenario [i] is byte-identical regardless of how many scenarios are
   generated, in what order, or on how many domains. *)

type kind = Via_removal | Pad_relocation | Wire_strengthen | Load_shift

let kind_name = function
  | Via_removal -> "via-removal"
  | Pad_relocation -> "pad-relocation"
  | Wire_strengthen -> "wire-strengthen"
  | Load_shift -> "load-shift"

let all_kinds = [ Via_removal; Pad_relocation; Wire_strengthen; Load_shift ]

type scenario = {
  index : int;
  kind : kind;
  label : string;
  edits : Sddm.Edit.t list;
}

(* Classified element pools. Node numbering contract of [Generate]:
   bottom-layer nodes are [0 .. nx*ny), top-layer nodes follow — so a
   resistor crossing the boundary is a via. *)
type pools = {
  vias : (int * int) array;
  wires : (int * int) array;  (* bottom-layer segments *)
  pads : (int * float) array;  (* (node, conductance) *)
  loads : (int * float) array;  (* (node, amps) *)
  top_nodes : int array;  (* top-layer nodes without a pad *)
}

let classify ~(spec : Generate.spec) (c : Generate.circuit) =
  let top_base = spec.Generate.nx * spec.Generate.ny in
  let vias = ref [] and wires = ref [] in
  Array.iter
    (fun (u, v, _ohms) ->
      let bu = u < top_base and bv = v < top_base in
      if bu <> bv then vias := (u, v) :: !vias
      else if bu then wires := (u, v) :: !wires)
    c.Generate.resistors;
  let padded = Hashtbl.create 64 in
  let pads =
    Array.map
      (fun (node, ohms) ->
        Hashtbl.replace padded node ();
        (node, 1.0 /. ohms))
      c.Generate.pads
  in
  let top_nodes = ref [] in
  for node = c.Generate.n_nodes - 1 downto top_base do
    if not (Hashtbl.mem padded node) then top_nodes := node :: !top_nodes
  done;
  {
    vias = Array.of_list (List.rev !vias);
    wires = Array.of_list (List.rev !wires);
    pads;
    loads = Array.copy c.Generate.loads;
    top_nodes = Array.of_list !top_nodes;
  }

let pick rng a =
  if Array.length a = 0 then None else Some a.(Rng.int rng (Array.length a))

(* Build scenario [i]. Unavailable kinds (a grid with one pad cannot
   relocate pads safely; a storm may have zeroed nothing yet) degrade to
   wire strengthening, which every mesh supports. *)
let scenario ~seed ~kinds ~pools index =
  let rng = Rng.keyed ~seed index in
  let kinds = if kinds = [] then all_kinds else kinds in
  let kind = List.nth kinds (index mod List.length kinds) in
  let wire_strengthen () =
    match pick rng pools.wires with
    | Some (u, v) ->
      ( Wire_strengthen,
        Printf.sprintf "strengthen wire %d-%d x4" u v,
        [ Sddm.Edit.Scale_conductance { u; v; factor = 4.0 } ] )
    | None -> (Wire_strengthen, "no wires to strengthen", [])
  in
  let kind, label, edits =
    match kind with
    | Wire_strengthen -> wire_strengthen ()
    | Via_removal -> (
      match pick rng pools.vias with
      | Some (u, v) ->
        (* scale, don't zero: the factor 1e-6 keeps the matrix away from
           exact singularity on pathological pocket grids while being
           electrically indistinguishable from removal *)
        ( Via_removal,
          Printf.sprintf "remove via %d-%d" u v,
          [ Sddm.Edit.Scale_conductance { u; v; factor = 1e-6 } ] )
      | None -> wire_strengthen ())
    | Pad_relocation -> (
      (* keep the grid grounded: only relocate when other pads remain *)
      if Array.length pools.pads < 2 then wire_strengthen ()
      else
        match (pick rng pools.pads, pick rng pools.top_nodes) with
        | Some (from_node, g), Some to_node when from_node <> to_node ->
          ( Pad_relocation,
            Printf.sprintf "relocate pad %d -> %d" from_node to_node,
            [
              Sddm.Edit.Set_excess { node = from_node; siemens = 0.0 };
              Sddm.Edit.Set_excess { node = to_node; siemens = g };
            ] )
        | _ -> wire_strengthen ())
    | Load_shift -> (
      match (pick rng pools.loads, pick rng pools.loads) with
      | Some (from_node, amps), Some (to_node, _) when from_node <> to_node
        ->
        ( Load_shift,
          Printf.sprintf "shift load %d -> %d" from_node to_node,
          [
            Sddm.Edit.Set_load { node = from_node; amps = 0.0 };
            Sddm.Edit.Set_load { node = to_node; amps };
          ] )
      | _ -> wire_strengthen ())
  in
  { index; kind; label; edits }

let storm ?(seed = 1) ?(kinds = all_kinds) ~spec circuit ~count =
  if count < 0 then invalid_arg "Eco.storm: negative count";
  let pools = classify ~spec circuit in
  Array.init count (fun i -> scenario ~seed ~kinds ~pools i)

let max_support scenarios =
  Array.fold_left
    (fun acc s ->
      let nodes = Hashtbl.create 8 in
      List.iter
        (fun e ->
          List.iter (fun n -> Hashtbl.replace nodes n ()) (Sddm.Edit.support e))
        s.edits;
      max acc (Hashtbl.length nodes))
    0 scenarios
