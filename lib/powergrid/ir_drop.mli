(** IR-drop post-analysis of a power-grid solution.

    In the drop formulation the solution vector {e is} the per-node IR
    drop; this module summarizes it the way sign-off reports do. *)

type report = {
  max_drop : float;
  mean_drop : float;
  p99_drop : float;  (** 99th-percentile drop *)
  worst_nodes : (int * float) array;  (** top offenders, worst first *)
  violations : int;  (** nodes above the budget *)
}

val analyze : ?budget:float -> ?top:int -> Sparse.Vec.t -> report
(** [analyze drops] computes the summary. [budget] (default 0.05 V, a
    typical 3–5% of a 1.8 V supply) sets the violation threshold; [top]
    (default 10) the number of worst nodes reported. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line rendering. *)
