exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type card = { name : string; n_plus : string; n_minus : string; value : float }

type t = {
  resistors : card list;
  currents : card list;
  vsources : card list;
  capacitors : card list;
}

(* engineering-suffix number parsing: 1k, 2.2meg, 10u, ... *)
let parse_value token =
  let token = String.lowercase_ascii token in
  let len = String.length token in
  let split i = (String.sub token 0 i, String.sub token i (len - i)) in
  let rec digits_end i =
    if i < len
       && (match token.[i] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
           | _ -> i > 0 && token.[i - 1] = 'e' && token.[i] = '-')
    then digits_end (i + 1)
    else i
  in
  (* careful: 'e' may start an exponent or be part of 'meg'; try longest
     numeric prefix that parses *)
  let rec try_prefix i =
    if i = 0 then fail "bad numeric value %S" token
    else
      let num, suffix = split i in
      match float_of_string_opt num with
      | Some v -> (v, suffix)
      | None -> try_prefix (i - 1)
  in
  let v, suffix = try_prefix (digits_end len) in
  let scale =
    match suffix with
    | "" -> 1.0
    | "t" -> 1e12
    | "g" -> 1e9
    | "meg" -> 1e6
    | "k" -> 1e3
    | "m" -> 1e-3
    | "u" -> 1e-6
    | "n" -> 1e-9
    | "p" -> 1e-12
    | "f" -> 1e-15
    | s -> fail "unknown unit suffix %S in %S" s token
  in
  v *. scale

let parse_line line acc =
  let line =
    match String.index_opt line '*' with
    | Some 0 -> ""
    | _ -> line
  in
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> acc
  | directive :: _ when directive.[0] = '.' -> acc
  | name :: n_plus :: n_minus :: value :: _ ->
    let card = { name; n_plus; n_minus; value = parse_value value } in
    (match Char.lowercase_ascii name.[0] with
     | 'r' -> { acc with resistors = card :: acc.resistors }
     | 'i' -> { acc with currents = card :: acc.currents }
     | 'v' -> { acc with vsources = card :: acc.vsources }
     | 'c' -> { acc with capacitors = card :: acc.capacitors }
     | c -> fail "unsupported element type '%c' in line %S" c line)
  | _ -> fail "malformed line %S" line

let parse_string text =
  let empty =
    { resistors = []; currents = []; vsources = []; capacitors = [] }
  in
  let lines = String.split_on_char '\n' text in
  List.fold_left (fun acc l -> parse_line l acc) empty lines

let parse_file path =
  parse_string (In_channel.with_open_text path In_channel.input_all)

let n_resistors t = List.length t.resistors
let n_current_sources t = List.length t.currents
let n_voltage_sources t = List.length t.vsources
let n_capacitors t = List.length t.capacitors

type problem_with_names = {
  problem : Sddm.Problem.t;
  node_names : string array;
  fixed_voltage : (string * float) list;
}

let grounded_capacitances t =
  List.filter_map
    (fun c ->
      if c.n_minus = "0" then Some (c.n_plus, c.value)
      else if c.n_plus = "0" then Some (c.n_minus, c.value)
      else None)
    t.capacitors

let to_problem ?(name = "netlist") t =
  (* fixed node voltages from grounded V sources *)
  let fixed = Hashtbl.create 16 in
  Hashtbl.replace fixed "0" 0.0;
  List.iter
    (fun c ->
      let node, voltage =
        if c.n_minus = "0" then (c.n_plus, c.value)
        else if c.n_plus = "0" then (c.n_minus, -.c.value)
        else
          fail "voltage source %s has no grounded terminal (unsupported)"
            c.name
      in
      match Hashtbl.find_opt fixed node with
      | Some v when v <> voltage ->
        fail "conflicting voltage sources on node %s" node
      | _ -> Hashtbl.replace fixed node voltage)
    t.vsources;
  (* index the free nodes in order of first appearance *)
  let index = Hashtbl.create 64 in
  let names = ref [] in
  let count = ref 0 in
  let intern node =
    if Hashtbl.mem fixed node then -1
    else
      match Hashtbl.find_opt index node with
      | Some i -> i
      | None ->
        let i = !count in
        Hashtbl.replace index node i;
        names := node :: !names;
        incr count;
        i
  in
  List.iter
    (fun c ->
      ignore (intern c.n_plus);
      ignore (intern c.n_minus))
    t.resistors;
  List.iter
    (fun c ->
      ignore (intern c.n_plus);
      ignore (intern c.n_minus))
    t.currents;
  let n = !count in
  if n = 0 then fail "netlist has no free nodes";
  let node_names = Array.of_list (List.rev !names) in
  let edges = ref [] in
  let d = Array.make n 0.0 in
  let b = Sparse.Vec.create n in
  List.iter
    (fun c ->
      if c.value <= 0.0 then
        fail "resistor %s has nonpositive resistance" c.name;
      let g = 1.0 /. c.value in
      let u = intern c.n_plus and v = intern c.n_minus in
      match (u, v) with
      | -1, -1 -> ()
      | -1, v ->
        d.(v) <- d.(v) +. g;
        b.{v} <- b.{v} +. (g *. Hashtbl.find fixed c.n_plus)
      | u, -1 ->
        d.(u) <- d.(u) +. g;
        b.{u} <- b.{u} +. (g *. Hashtbl.find fixed c.n_minus)
      | u, v when u = v -> ()
      | u, v -> edges := (u, v, g) :: !edges)
    t.resistors;
  List.iter
    (fun c ->
      (* current c.value flows from n_plus through the source to n_minus *)
      let u = intern c.n_plus and v = intern c.n_minus in
      if u >= 0 then b.{u} <- b.{u} -. c.value;
      if v >= 0 then b.{v} <- b.{v} +. c.value)
    t.currents;
  let graph =
    Sddm.Graph.coalesce
      (Sddm.Graph.create ~n ~edges:(Array.of_list !edges))
  in
  (* every free component needs a DC path to a fixed node *)
  let labels, n_comp = Sddm.Graph.connected_components graph in
  let grounded = Array.make n_comp false in
  Array.iteri (fun i di -> if di > 0.0 then grounded.(labels.(i)) <- true) d;
  Array.iteri
    (fun comp ok ->
      if not ok then fail "floating subcircuit (component %d)" comp)
    grounded;
  let fixed_voltage =
    Hashtbl.fold (fun k v acc -> if k = "0" then acc else (k, v) :: acc) fixed []
  in
  {
    problem = Sddm.Problem.of_graph ~name ~graph ~d ~b;
    node_names;
    fixed_voltage;
  }

let write_circuit oc (c : Generate.circuit) =
  Printf.fprintf oc "* synthetic power grid: %d nodes, %d resistors\n"
    c.Generate.n_nodes
    (Array.length c.Generate.resistors);
  Printf.fprintf oc "Vdd vdd 0 %.6g\n" c.Generate.vdd;
  Array.iteri
    (fun k (u, v, r) -> Printf.fprintf oc "R%d n%d n%d %.17g\n" k u v r)
    c.Generate.resistors;
  Array.iteri
    (fun k (node, r) ->
      Printf.fprintf oc "Rpad%d n%d vdd %.17g\n" k node r)
    c.Generate.pads;
  Array.iteri
    (fun k (node, amps) ->
      Printf.fprintf oc "I%d n%d 0 %.17g\n" k node amps)
    c.Generate.loads;
  Array.iteri
    (fun k (node, farads) ->
      Printf.fprintf oc "C%d n%d 0 %.17g\n" k node farads)
    c.Generate.caps;
  Printf.fprintf oc ".op\n.end\n"

let write_circuit_file path c =
  Out_channel.with_open_text path (fun oc -> write_circuit oc c)

let write_dual_circuit oc (d : Generate.dual) =
  let v = d.Generate.vdd_grid and g = d.Generate.gnd_grid in
  Printf.fprintf oc
    "* dual-rail power grid: %d vdd nodes, %d gnd nodes\n"
    v.Generate.n_nodes g.Generate.n_nodes;
  Printf.fprintf oc "Vdd vdd 0 %.6g\n" v.Generate.vdd;
  Array.iteri
    (fun k (a, b, r) -> Printf.fprintf oc "RV%d nV%d nV%d %.17g\n" k a b r)
    v.Generate.resistors;
  Array.iteri
    (fun k (node, r) -> Printf.fprintf oc "RVpad%d nV%d vdd %.17g\n" k node r)
    v.Generate.pads;
  Array.iteri
    (fun k (a, b, r) -> Printf.fprintf oc "RG%d nG%d nG%d %.17g\n" k a b r)
    g.Generate.resistors;
  Array.iteri
    (fun k (node, r) -> Printf.fprintf oc "RGpad%d nG%d 0 %.17g\n" k node r)
    g.Generate.pads;
  (* each load draws from the VDD net and returns into the GND net *)
  Array.iteri
    (fun k (node, amps) ->
      Printf.fprintf oc "I%d nV%d nG%d %.17g\n" k node node amps)
    v.Generate.loads;
  Array.iteri
    (fun k (node, farads) ->
      Printf.fprintf oc "CV%d nV%d 0 %.17g\n" k node farads)
    v.Generate.caps;
  Printf.fprintf oc ".op\n.end\n"

let write_dual_circuit_file path d =
  Out_channel.with_open_text path (fun oc -> write_dual_circuit oc d)
