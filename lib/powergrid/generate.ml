type spec = {
  nx : int;
  ny : int;
  coarse_pitch : int;
  wire_conductance : float;
  top_conductance : float;
  via_conductance : float;
  pad_pitch : int;
  pad_conductance : float;
  load_fraction : float;
  load_max : float;
  jitter : float;
  missing_fraction : float;
  region_decades : float;
  region_block : int;
  seed : int;
}

let default ~nx ~ny ~seed =
  {
    nx;
    ny;
    coarse_pitch = 4;
    wire_conductance = 1.0;
    top_conductance = 5.0;
    via_conductance = 100.0;
    pad_pitch = 8;
    pad_conductance = 1000.0;
    load_fraction = 0.1;
    load_max = 0.01;
    jitter = 0.1;
    missing_fraction = 0.02;
    region_decades = 2.5;
    region_block = 16;
    seed;
  }

type circuit = {
  n_nodes : int;
  resistors : (int * int * float) array;
  pads : (int * float) array;
  loads : (int * float) array;
  caps : (int * float) array;
  vdd : float;
}

let top_dims spec =
  let cx = ((spec.nx - 1) / spec.coarse_pitch) + 1 in
  let cy = ((spec.ny - 1) / spec.coarse_pitch) + 1 in
  (cx, cy)

let node_count spec =
  let cx, cy = top_dims spec in
  (spec.nx * spec.ny) + (cx * cy)

(* Single-pass streamed emission of every circuit element, in a fixed
   deterministic order (one shared RNG stream). The resistor callback
   receives ohms; pads receive pad resistance; loads amps; caps farads.
   A union-find over the emitted edges runs inline so the repair pass
   (stitching blockage-isolated pockets back to the top mesh) needs no
   second traversal of the edge set — the whole grid is produced without
   ever materializing an edge list, which is what lets the paper-scale
   (1e6+ node) cases fit in RAM. *)
let iter_circuit spec ~res ~pad ~load ~cap =
  assert (spec.nx >= 2 && spec.ny >= 2);
  assert (spec.coarse_pitch >= 2);
  assert (spec.pad_pitch >= 1);
  assert (spec.jitter >= 0.0 && spec.jitter < 1.0);
  let rng = Rng.create spec.seed in
  let nx = spec.nx and ny = spec.ny in
  let cx, cy = top_dims spec in
  let bottom x y = (y * nx) + x in
  let top_base = nx * ny in
  let top i j = top_base + (j * cx) + i in
  let n_nodes = top_base + (cx * cy) in
  let parent = Array.init n_nodes (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let emit u v r =
    let ru = find u and rv = find v in
    if ru <> rv then parent.(ru) <- rv;
    res u v r
  in
  let jittered g =
    g *. (1.0 +. (spec.jitter *. ((2.0 *. Rng.float rng) -. 1.0)))
  in
  let add_res u v g =
    let g = jittered g in
    emit u v (1.0 /. g)
  in
  (* Regional wire-width heterogeneity: real grids route different blocks
     with different wire widths, so segment conductance varies by orders
     of magnitude across regions (log-uniform over region_decades). This
     is what stresses strength-of-connection heuristics in AMG-style
     solvers while weight-aware randomized sampling absorbs it. *)
  let block = max 1 spec.region_block in
  let bx = ((nx - 1) / block) + 1 in
  let by = ((ny - 1) / block) + 1 in
  let region =
    Array.init (bx * by) (fun _ ->
        10.0 ** (spec.region_decades *. (Rng.float rng -. 0.5)))
  in
  let region_of x y = region.(((y / block) * bx) + (x / block)) in
  (* Bottom-layer mesh with random blockages. Removal keeps the grid
     connected in practice because the missing fraction is small and vias
     tie the layers together; connectivity is validated by the caller. *)
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let g_here = spec.wire_conductance *. region_of x y in
      if x + 1 < nx && Rng.float rng >= spec.missing_fraction then
        add_res (bottom x y) (bottom (x + 1) y) g_here;
      if y + 1 < ny && Rng.float rng >= spec.missing_fraction then
        add_res (bottom x y) (bottom x (y + 1)) g_here
    done
  done;
  (* Top-layer coarse mesh (no blockages: thick global metal). *)
  for j = 0 to cy - 1 do
    for i = 0 to cx - 1 do
      if i + 1 < cx then add_res (top i j) (top (i + 1) j) spec.top_conductance;
      if j + 1 < cy then add_res (top i j) (top i (j + 1)) spec.top_conductance
    done
  done;
  (* Vias: every top node connects straight down. Via conductance is
     heavy-tailed (exponential around the nominal value) so a minority of
     vias are extremely strong, like merged multi-cut vias in real grids. *)
  for j = 0 to cy - 1 do
    for i = 0 to cx - 1 do
      let x = min (i * spec.coarse_pitch) (nx - 1) in
      let y = min (j * spec.coarse_pitch) (ny - 1) in
      let g = spec.via_conductance *. (0.5 +. Rng.exponential rng 1.0) in
      emit (top i j) (bottom x y) (1.0 /. g)
    done
  done;
  (* Pads on the top layer, every pad_pitch-th node of the top mesh. *)
  let pad_index = ref 0 in
  for j = 0 to cy - 1 do
    for i = 0 to cx - 1 do
      if !pad_index mod spec.pad_pitch = 0 then
        pad (top i j) (1.0 /. spec.pad_conductance);
      incr pad_index
    done
  done;
  (* Loads on random bottom nodes; each load site also carries decoupling
     capacitance (on-die decap sits next to the switching cells). *)
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      if Rng.float rng < spec.load_fraction then begin
        load (bottom x y) (spec.load_max *. Rng.float_open rng);
        cap (bottom x y) (1e-12 *. (0.5 +. Rng.float rng))
      end
    done
  done;
  (* Repair pass: random blockages can isolate a pocket of the bottom
     mesh from every via. Stitch each such component back to the top
     layer with one extra via, like the stitching vias inserted during
     physical verification. The pocket root is unioned INTO [main]
     directly — not through [emit], whose union direction would crown
     the pocket root and invalidate [main] — so the rest of the pocket
     resolves to the main component and is not stitched twice. *)
  let main = find (top 0 0) in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let node = bottom x y in
      let root = find node in
      if root <> main then begin
        let i = min ((x + (spec.coarse_pitch / 2)) / spec.coarse_pitch) (cx - 1) in
        let j = min ((y + (spec.coarse_pitch / 2)) / spec.coarse_pitch) (cy - 1) in
        parent.(root) <- main;
        res (top i j) node (1.0 /. spec.via_conductance)
      end
    done
  done

let generate_circuit spec =
  let resistors = ref [] in
  let pads = ref [] in
  let loads = ref [] in
  let caps = ref [] in
  iter_circuit spec
    ~res:(fun u v r -> resistors := (u, v, r) :: !resistors)
    ~pad:(fun node r -> pads := (node, r) :: !pads)
    ~load:(fun node amps -> loads := (node, amps) :: !loads)
    ~cap:(fun node farads -> caps := (node, farads) :: !caps);
  {
    n_nodes = node_count spec;
    resistors = Array.of_list !resistors;
    pads = Array.of_list !pads;
    loads = Array.of_list !loads;
    caps = Array.of_list !caps;
    vdd = 1.8;
  }

(* Sanity: every component must contain a pad, otherwise the system is
   singular. The generator's pad placement guarantees this for the top
   mesh; bottom components are tied in through vias. *)
let validate_grounded ~graph ~d =
  let labels, n_comp = Sddm.Graph.connected_components graph in
  if n_comp > 1 then begin
    let has_pad = Array.make n_comp false in
    Array.iteri (fun i di -> if di > 0.0 then has_pad.(labels.(i)) <- true) d;
    Array.iteri
      (fun comp ok ->
        if not ok then
          invalid_arg
            (Printf.sprintf
               "Generate: component %d has no pad (grid disconnected)" comp))
      has_pad
  end

let circuit_to_problem ~name c =
  let edges =
    Array.map (fun (u, v, r) -> (u, v, 1.0 /. r)) c.resistors
  in
  let graph = Sddm.Graph.coalesce (Sddm.Graph.create ~n:c.n_nodes ~edges) in
  let d = Array.make c.n_nodes 0.0 in
  Array.iter (fun (node, r) -> d.(node) <- d.(node) +. (1.0 /. r)) c.pads;
  let b = Sparse.Vec.create c.n_nodes in
  Array.iter (fun (node, amps) -> b.{node} <- b.{node} +. amps) c.loads;
  validate_grounded ~graph ~d;
  Sddm.Problem.of_graph ~name ~graph ~d ~b

(* The chunked build: elements stream out of [iter_circuit] straight into
   flat int/float edge arrays (grown by doubling) and the d/b vectors —
   no per-edge boxing, so peak memory is the final problem plus one edge
   buffer. Produces exactly the problem [circuit_to_problem] builds from
   [generate_circuit spec]: the coalesced graph sorts edges and the only
   possible duplicate (a stitch doubling a via) sums two terms, which is
   order-independent. *)
let generate spec =
  let name = Printf.sprintf "pg-%dx%d-s%d" spec.nx spec.ny spec.seed in
  let n = node_count spec in
  let capacity = ref ((2 * n) + (n / 4) + 64) in
  let us = ref (Array.make !capacity 0) in
  let vs = ref (Array.make !capacity 0) in
  let ws = ref (Array.make !capacity 0.0) in
  let len = ref 0 in
  let push u v g =
    if !len = !capacity then begin
      let c' = 2 * !capacity in
      let grow a zero =
        let a' = Array.make c' zero in
        Array.blit !a 0 a' 0 !capacity;
        a := a'
      in
      grow us 0;
      grow vs 0;
      grow ws 0.0;
      capacity := c'
    end;
    !us.(!len) <- u;
    !vs.(!len) <- v;
    !ws.(!len) <- g;
    incr len
  in
  let d = Array.make n 0.0 in
  let b = Sparse.Vec.create n in
  iter_circuit spec
    ~res:(fun u v r -> push u v (1.0 /. r))
    ~pad:(fun node r -> d.(node) <- d.(node) +. (1.0 /. r))
    ~load:(fun node amps -> b.{node} <- b.{node} +. amps)
    ~cap:(fun _ _ -> ());
  let graph =
    Sddm.Graph.coalesce
      (Sddm.Graph.of_arrays ~n ~us:(Array.sub !us 0 !len)
         ~vs:(Array.sub !vs 0 !len) ~ws:(Array.sub !ws 0 !len))
  in
  validate_grounded ~graph ~d;
  Sddm.Problem.of_graph ~name ~graph ~d ~b

type dual = {
  vdd_grid : circuit;
  gnd_grid : circuit;
}

let generate_dual spec =
  let vdd_grid = generate_circuit spec in
  let gnd_raw = generate_circuit { spec with seed = spec.seed + 104729 } in
  (* the return current of each load flows through the ground grid at the
     same cell *)
  let gnd_grid = { gnd_raw with loads = vdd_grid.loads } in
  { vdd_grid; gnd_grid }

let dual_to_problems d =
  ( circuit_to_problem ~name:"vdd-drop" d.vdd_grid,
    circuit_to_problem ~name:"gnd-bounce" d.gnd_grid )
