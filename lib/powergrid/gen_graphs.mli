(** Synthetic graph families standing in for the SuiteSparse test matrices
    of the paper's Table 4 (see DESIGN.md §2 for the substitution
    rationale). All generators are deterministic given the seed and return
    connected graphs (a spanning backbone is added where the random model
    alone could disconnect). *)

val mesh2d : ?weight:float -> nx:int -> ny:int -> unit -> Sddm.Graph.t
(** 5-point 2-D grid ([ecology2]-like). *)

val mesh2d_9pt : ?weight:float -> nx:int -> ny:int -> unit -> Sddm.Graph.t
(** 9-point 2-D grid with diagonals ([thermal2]-like FE stencil). *)

val mesh3d : ?weight:float -> nx:int -> ny:int -> nz:int -> unit -> Sddm.Graph.t
(** 7-point 3-D grid ([G3_circuit]-like; that matrix is a 3-D circuit
    structure). *)

val power_law : n:int -> avg_degree:float -> alpha:float -> seed:int -> Sddm.Graph.t
(** Chung–Lu style scale-free graph with Pareto degree targets
    ([com-Youtube]/[com-DBLP]-like); unit weights. [alpha] is the Pareto
    exponent (2–3 typical). *)

val community : n:int -> communities:int -> p_in:float -> inter_degree:float ->
  seed:int -> Sddm.Graph.t
(** Planted-partition graph: dense cliques-ish blocks plus sparse
    inter-community edges ([com-Amazon]/[coPapersDBLP]-like). [p_in] is the
    intra-community edge probability; [inter_degree] the expected number of
    inter-community edges per vertex. *)

val geometric : n:int -> radius:float -> seed:int -> Sddm.Graph.t
(** Random geometric graph in the unit square with inverse-distance
    weights ([NACA0015]/[fe_*]/census-tract-like planar meshes). Uses a
    cell grid, O(n) expected. *)

val random_spanning_backbone : Rng.t -> Sddm.Graph.t -> Sddm.Graph.t
(** Returns the graph with a random-permutation path added over any
    disconnected parts so the result is connected (weight = average edge
    weight). Exposed for reuse in tests. *)
