type case = {
  id : string;
  analog_of : string;
  build : unit -> Sddm.Problem.t;
}

let scaled scale n = max 24 (int_of_float (float_of_int n *. sqrt scale))

(* ---- power-grid cases (Tables 1-3) ----
   Bottom-mesh side lengths chosen so relative sizes track the paper's 16
   cases (ibmpg3..8 small, thupg1..10 growing to the largest). *)
let pg_dims =
  [|
    ("pg01", "ibmpg3", 110, 3001);
    ("pg02", "ibmpg4", 116, 3002);
    ("pg03", "ibmpg5", 125, 3003);
    ("pg04", "ibmpg6", 155, 3004);
    ("pg05", "ibmpg7", 146, 3005);
    ("pg06", "ibmpg8", 146, 3006);
    ("pg07", "thupg1", 260, 3007);
    ("pg08", "thupg2", 300, 3008);
    ("pg09", "thupg3", 330, 3009);
    ("pg10", "thupg4", 380, 3010);
    ("pg11", "thupg5", 430, 3011);
    ("pg12", "thupg6", 470, 3012);
    ("pg13", "thupg7", 500, 3013);
    ("pg14", "thupg8", 560, 3014);
    ("pg15", "thupg9", 610, 3015);
    ("pg16", "thupg10", 640, 3016);
  |]

let power_grid_cases ?(scale = 1.0) () =
  Array.map
    (fun (id, analog_of, side, seed) ->
      let side = scaled scale side in
      {
        id;
        analog_of;
        build =
          (fun () ->
            let spec = Generate.default ~nx:side ~ny:side ~seed in
            let p = Generate.generate spec in
            (* rename to the suite id for table printing *)
            Sddm.Problem.of_graph ~name:id ~graph:p.Sddm.Problem.graph
              ~d:p.Sddm.Problem.d ~b:p.Sddm.Problem.b);
      })
    pg_dims

(* ---- Table 4 analogs ---- *)

let sprinkle_ground ~seed ~fraction ~value n =
  let rng = Rng.create seed in
  let d = Array.make n 0.0 in
  let hits = max 1 (int_of_float (fraction *. float_of_int n)) in
  for _ = 1 to hits do
    d.(Rng.int rng n) <- value
  done;
  d

let graph_problem ~id ~seed g =
  let n = Sddm.Graph.n_vertices g in
  let d = sprinkle_ground ~seed:(seed + 17) ~fraction:0.01 ~value:1.0 n in
  let rng = Rng.create (seed + 29) in
  let b = Sparse.Vec.init n (fun _ -> Rng.float rng -. 0.5) in
  Sddm.Problem.of_graph ~name:id ~graph:g ~d ~b

let other_specs ~scale =
  let s n = scaled scale n in
  [|
    ( "youtube",
      "com-Youtube",
      fun () ->
        Gen_graphs.power_law ~n:(s 180 * s 180) ~avg_degree:6.5 ~alpha:2.0
          ~seed:4101 );
    ( "amazon",
      "com-Amazon",
      fun () ->
        let n = s 170 * s 170 in
        (* community size ~10, like com-Amazon's small ground-truth groups *)
        Gen_graphs.community ~n ~communities:(max 1 (n / 10)) ~p_in:0.4
          ~inter_degree:2.0 ~seed:4102 );
    ( "dblp",
      "com-DBLP",
      fun () ->
        let n = s 165 * s 165 in
        (* co-authorship cliques of ~8 *)
        Gen_graphs.community ~n ~communities:(max 1 (n / 8)) ~p_in:0.6
          ~inter_degree:1.5 ~seed:4103 );
    ( "copaper",
      "coPapersDBLP",
      fun () ->
        let n = s 120 * s 120 in
        (* coPapersDBLP is dense (nnz/|V| ~ 57): big dense communities *)
        Gen_graphs.community ~n ~communities:(max 1 (n / 30)) ~p_in:0.8
          ~inter_degree:2.0 ~seed:4104 );
    ( "ecology",
      "ecology2",
      fun () -> Gen_graphs.mesh2d ~nx:(s 200) ~ny:(s 200) () );
    ( "thermal",
      "thermal2",
      fun () -> Gen_graphs.mesh2d_9pt ~nx:(s 150) ~ny:(s 150) () );
    ( "g3circuit",
      "G3_circuit",
      fun () -> Gen_graphs.mesh3d ~nx:(s 35) ~ny:(s 35) ~nz:(s 24) () );
    ( "naca",
      "NACA0015",
      fun () ->
        let n = s 170 * s 170 in
        let radius = sqrt (7.0 /. (Float.pi *. float_of_int n)) in
        Gen_graphs.geometric ~n ~radius ~seed:4108 );
    ( "fetooth",
      "fe_tooth",
      fun () ->
        let n = s 90 * s 90 in
        let radius = sqrt (12.0 /. (Float.pi *. float_of_int n)) in
        Gen_graphs.geometric ~n ~radius ~seed:4109 );
    ( "feocean",
      "fe_ocean",
      fun () -> Gen_graphs.mesh3d ~nx:(s 25) ~ny:(s 25) ~nz:(s 22) () );
    ( "mo2010",
      "mo2010",
      fun () ->
        let n = s 130 * s 130 in
        let radius = sqrt (6.0 /. (Float.pi *. float_of_int n)) in
        Gen_graphs.geometric ~n ~radius ~seed:4111 );
    ( "oh2010",
      "oh2010",
      fun () ->
        let n = s 135 * s 135 in
        let radius = sqrt (6.0 /. (Float.pi *. float_of_int n)) in
        Gen_graphs.geometric ~n ~radius ~seed:4112 );
  |]

let other_cases ?(scale = 1.0) () =
  Array.mapi
    (fun k (id, analog_of, build_graph) ->
      {
        id;
        analog_of;
        build = (fun () -> graph_problem ~id ~seed:(4200 + k) (build_graph ()));
      })
    (other_specs ~scale)

let all_cases ?scale () =
  Array.append (power_grid_cases ?scale ()) (other_cases ?scale ())

let find ?scale key =
  let cases = all_cases ?scale () in
  match
    Array.find_opt (fun c -> c.id = key || c.analog_of = key) cases
  with
  | Some c -> c
  | None -> raise Not_found

(* Paper-scale single case: smallest square grid with at least
   [target_nodes] unknowns (both layers counted). Built by the chunked
   generator, so requesting 1e6+ nodes does not hold a boxed grid in
   RAM. *)
let scale_case ?(seed = 3100) ~target_nodes () =
  if target_nodes < 24 * 24 then
    invalid_arg "Suite.scale_case: target too small";
  (* node_count(side) = side^2 + ceil(side/4)^2, monotone in side. The
     sqrt estimate can land on either side of the answer (the ceil term
     overshoots by up to ~side/2), so walk down to below the target
     before walking up to the smallest satisfying side. *)
  let node_count side =
    Generate.node_count (Generate.default ~nx:side ~ny:side ~seed)
  in
  let side =
    ref (max 2 (int_of_float (sqrt (float_of_int target_nodes /. 1.0625))))
  in
  while !side > 2 && node_count (!side - 1) >= target_nodes do
    decr side
  done;
  while node_count !side < target_nodes do
    incr side
  done;
  let side = !side in
  {
    id = Printf.sprintf "scale-%d" target_nodes;
    analog_of = "fig3-scale";
    build = (fun () -> Generate.generate (Generate.default ~nx:side ~ny:side ~seed));
  }

let random_rhs p ~seed =
  let rng = Rng.create seed in
  let n = Sddm.Problem.n p in
  let b = Sparse.Vec.init n (fun _ -> Rng.float rng -. 0.5) in
  Sddm.Problem.of_graph ~name:p.Sddm.Problem.name ~graph:p.Sddm.Problem.graph
    ~d:p.Sddm.Problem.d ~b
