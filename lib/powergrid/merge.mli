(** PowerRush's small-resistor merging trick [Yang et al., TVLSI'14].

    Resistors far smaller than typical (large conductance — mostly vias)
    contribute negligible voltage drop but inflate both the matrix size and
    its condition number. Contracting them shrinks the problem: endpoints
    of every edge with weight above [factor] times the median weight are
    merged by union-find; parallel edges arising from the contraction are
    summed; excess diagonal and right-hand side accumulate onto
    representatives.

    The merged solution is expanded by giving every original node its
    representative's voltage — exact up to the (tiny) drop across merged
    resistors, which is why the trick is acceptable at the paper's 1e-6
    relative-residual target (the residual is measured on the merged
    system, like PowerRush does). *)

type t = {
  problem : Sddm.Problem.t;  (** the contracted system *)
  representative : int array;
      (** original node -> contracted unknown index *)
  n_merged_edges : int;
}

val merge : ?factor:float -> Sddm.Problem.t -> t
(** [merge p] contracts heavy edges. [factor] defaults to 200 (weight
    > 200x median is contracted): on grids with multiple decades of
    regional wire-conductance variation, a lower threshold starts merging
    ordinary wires that carry real voltage gradients, not just vias. *)

val expand : t -> Sparse.Vec.t -> Sparse.Vec.t
(** Map a contracted solution back to all original nodes. *)
