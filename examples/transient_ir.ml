(* Transient IR-drop analysis: march a clock-gated power grid through time
   with backward Euler, reusing one LT-RChol preconditioner for every
   step.

   The interesting engineering question: does the decap keep the transient
   droop below the DC worst case when the block gates on? We simulate a
   power-on ramp followed by pulsed activity and report the envelope.

   Run with:  dune exec examples/transient_ir.exe *)

let () =
  let spec = Powergrid.Generate.default ~nx:100 ~ny:100 ~seed:77 in
  let circuit = Powergrid.Generate.generate_circuit spec in
  Format.printf "grid: %d nodes, %d decap sites@."
    circuit.Powergrid.Generate.n_nodes
    (Array.length circuit.Powergrid.Generate.caps);

  let h = 5e-12 in
  let t = Powerrchol.Transient.prepare ~circuit ~h () in
  let dc = Powerrchol.Transient.dc_drop t in
  Format.printf "DC max drop: %.4f V@.@." (Sparse.Vec.norm_inf dc);

  let clock ~time =
    (* 2 GHz clock, 40%% duty, gated on after a 0.1 ns ramp *)
    Powerrchol.Transient.Waveform.ramp ~rise:1e-10 time
    *. Powerrchol.Transient.Waveform.pulse ~period:5e-10 ~duty:0.4 time
  in
  let res =
    Powerrchol.Transient.simulate t ~steps:200 ~waveform:(fun time -> clock ~time)
  in
  Format.printf
    "marched %d steps of %.0f ps in %.3f s (preconditioner built once in \
     %.3f s)@."
    (Array.length res.Powerrchol.Transient.steps)
    (h *. 1e12) res.Powerrchol.Transient.t_march
    res.Powerrchol.Transient.t_prepare;
  Format.printf "total PCG iterations: %d (%.1f per step, warm-started)@.@."
    res.Powerrchol.Transient.total_iterations
    (float_of_int res.Powerrchol.Transient.total_iterations /. 200.0);

  (* envelope, decimated *)
  Format.printf "time (ps)   load   max drop (V)@.";
  Array.iteri
    (fun k (s : Powerrchol.Transient.step_stats) ->
      if k mod 20 = 19 then
        Format.printf "%9.1f   %4.2f   %.4f@."
          (s.Powerrchol.Transient.time *. 1e12)
          (clock ~time:s.Powerrchol.Transient.time)
          s.Powerrchol.Transient.max_drop)
    res.Powerrchol.Transient.steps;
  Format.printf "@.peak transient drop %.4f V at %.1f ps (DC bound %.4f V)@."
    res.Powerrchol.Transient.peak_drop
    (res.Powerrchol.Transient.peak_time *. 1e12)
    (Sparse.Vec.norm_inf dc)
