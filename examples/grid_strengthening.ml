(* Grid strengthening by adjoint sensitivity — the optimization loop a
   power-grid tool runs on top of the solver.

   One primal solve finds the worst-drop node; one adjoint solve (sharing
   the same LT-RChol preconditioner) prices the effect of widening every
   wire at once. We widen the most critical wires by 50% and re-solve,
   repeating a few rounds.

   Run with:  dune exec examples/grid_strengthening.exe *)

let widen problem edges_to_widen factor =
  let g = Sddm.Graph.coalesce problem.Sddm.Problem.graph in
  let module Es = Set.Make (Int) in
  let chosen = Es.of_list edges_to_widen in
  let edges =
    Array.init (Sddm.Graph.n_edges g) (fun e ->
        let u, v, w = Sddm.Graph.edge g e in
        if Es.mem e chosen then (u, v, w *. factor) else (u, v, w))
  in
  let graph = Sddm.Graph.create ~n:(Sddm.Graph.n_vertices g) ~edges in
  Sddm.Problem.of_graph ~name:problem.Sddm.Problem.name ~graph
    ~d:problem.Sddm.Problem.d ~b:problem.Sddm.Problem.b

let () =
  let spec = Powergrid.Generate.default ~nx:80 ~ny:80 ~seed:13 in
  let problem = ref (Powergrid.Generate.generate spec) in
  Format.printf "grid: %s@.@." (Sddm.Problem.describe !problem);
  Format.printf "%-6s %12s %14s %s@." "round" "worst drop" "worst node"
    "top critical wires (u-v, dphi/dw)";
  for round = 0 to 4 do
    let worst, grad = Powerrchol.Sensitivity.worst_node_drop !problem in
    let critical =
      Powerrchol.Sensitivity.most_critical_edges !problem grad 8
    in
    let describe =
      String.concat ", "
        (List.map
           (fun (u, v, _, d) -> Printf.sprintf "%d-%d (%.1e)" u v d)
           (List.filteri (fun i _ -> i < 3) critical))
    in
    Format.printf "%-6d %12.5f %14d %s@." round
      grad.Powerrchol.Sensitivity.objective worst describe;
    (* widen the 8 most critical wires by 50% *)
    let g = Sddm.Graph.coalesce !problem.Sddm.Problem.graph in
    let indices =
      List.filter_map
        (fun (u, v, _, _) ->
          (* recover edge index by scanning (fine at example scale) *)
          let found = ref None in
          for e = 0 to Sddm.Graph.n_edges g - 1 do
            let a, b, _ = Sddm.Graph.edge g e in
            if a = u && b = v then found := Some e
          done;
          !found)
        critical
    in
    problem := widen !problem indices 1.5
  done;
  let final = Powerrchol.Pipeline.solve !problem in
  Format.printf "@.final worst drop after strengthening: %.5f V@."
    (Sparse.Vec.norm_inf final.Powerrchol.Solver.x)
