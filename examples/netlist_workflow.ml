(* Full netlist workflow: synthesize a grid, export SPICE, parse it back,
   solve the voltage formulation, and cross-check the two formulations.

   This is the round trip an external tool integration would use: the
   netlist is the interchange format, the solver never sees generator
   internals.

   Run with:  dune exec examples/netlist_workflow.exe *)

let () =
  let spec = Powergrid.Generate.default ~nx:60 ~ny:60 ~seed:99 in
  let circuit = Powergrid.Generate.generate_circuit spec in
  let path = Filename.temp_file "powerrchol_example" ".sp" in
  Powergrid.Netlist.write_circuit_file path circuit;
  Format.printf "wrote %s (%d resistors, %d pads, %d loads, vdd %.1f V)@."
    path
    (Array.length circuit.Powergrid.Generate.resistors)
    (Array.length circuit.Powergrid.Generate.pads)
    (Array.length circuit.Powergrid.Generate.loads)
    circuit.Powergrid.Generate.vdd;

  (* parse it back like a third-party netlist *)
  let netlist = Powergrid.Netlist.parse_file path in
  Sys.remove path;
  let { Powergrid.Netlist.problem; node_names; fixed_voltage } =
    Powergrid.Netlist.to_problem ~name:"parsed-grid" netlist
  in
  Format.printf "parsed: %s, %d fixed rails@."
    (Sddm.Problem.describe problem)
    (List.length fixed_voltage);

  (* voltage formulation: unknowns are absolute node voltages *)
  let result = Powerrchol.Pipeline.solve problem in
  Format.printf "@.%a@.@." Powerrchol.Pipeline.pp_result result;

  (* lowest node voltage = worst IR drop *)
  let worst = ref (0, infinity) in
  Sparse.Vec.iteri
    (fun i v -> if v < snd !worst then worst := (i, v))
    result.Powerrchol.Solver.x;
  let worst_idx, worst_v = !worst in
  Format.printf "worst node: %s at %.4f V (drop %.4f V from the %.1f V rail)@."
    node_names.(worst_idx) worst_v
    (circuit.Powergrid.Generate.vdd -. worst_v)
    circuit.Powergrid.Generate.vdd;

  (* cross-check with the generator's native drop formulation *)
  let drop_problem = Powergrid.Generate.circuit_to_problem ~name:"drop" circuit in
  let drop = Powerrchol.Pipeline.solve ~rtol:1e-10 drop_problem in
  let vdd = circuit.Powergrid.Generate.vdd in
  let max_err = ref 0.0 in
  Array.iteri
    (fun idx name ->
      let orig = int_of_string (String.sub name 1 (String.length name - 1)) in
      let predicted = vdd -. drop.Powerrchol.Solver.x.{orig} in
      let err = Float.abs (predicted -. result.Powerrchol.Solver.x.{idx}) in
      if err > !max_err then max_err := err)
    node_names;
  Format.printf
    "voltage-formulation vs drop-formulation max mismatch: %.2e V@." !max_err
