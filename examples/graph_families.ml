(* Robustness across graph families — the theme of the paper's Table 4.

   PowerRChol is run on one representative of each synthetic family
   (scale-free, community, 2-D/3-D mesh, geometric). The point of the
   exercise: randomized Cholesky preconditioning keeps iteration counts
   flat across wildly different structures, which is where AMG (strong on
   meshes, brittle on scale-free graphs) and tree-based sparsifiers
   (strong on sparse graphs, weak on dense communities) each lose.

   Run with:  dune exec examples/graph_families.exe *)

let () =
  let families =
    [ "youtube"; "amazon"; "copaper"; "ecology"; "g3circuit"; "naca" ]
  in
  Format.printf "%-12s %-14s %9s %9s | %5s %9s %9s@." "case" "analog of"
    "|V|" "nnz" "Ni" "Ttot" "s/Mnnz";
  Format.printf "%s@." (String.make 78 '-');
  List.iter
    (fun id ->
      let case = Powergrid.Suite.find ~scale:0.25 id in
      let problem = case.Powergrid.Suite.build () in
      let r = Powerrchol.Pipeline.solve problem in
      let mnnz = float_of_int (Sddm.Problem.nnz problem) /. 1e6 in
      Format.printf "%-12s %-14s %9d %9d | %5d %9.3f %9.3f%s@."
        case.Powergrid.Suite.id case.Powergrid.Suite.analog_of
        (Sddm.Problem.n problem) (Sddm.Problem.nnz problem)
        r.Powerrchol.Solver.iterations r.Powerrchol.Solver.t_total
        (r.Powerrchol.Solver.t_total /. mnnz)
        (if r.Powerrchol.Solver.converged then "" else "  NOT CONVERGED"))
    families;
  Format.printf
    "@.Iteration counts stay in the same band across families — the \
     robustness claim of Table 4 / Fig. 3.@."
