(* Quickstart: build a small SDDM system by hand and solve it with the
   PowerRChol pipeline.

   The system is a 3x3 resistor mesh with one node tied to ground; we pull
   one ampere out of the far corner and ask for the node voltages.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the conductance network as a weighted graph: nodes are
     circuit nodes, edge weights are conductances (siemens). *)
  let nx = 3 in
  let node x y = (y * nx) + x in
  let edges = ref [] in
  for y = 0 to 2 do
    for x = 0 to 2 do
      if x + 1 < 3 then edges := (node x y, node (x + 1) y, 2.0) :: !edges;
      if y + 1 < 3 then edges := (node x y, node x (y + 1), 2.0) :: !edges
    done
  done;
  let graph = Sddm.Graph.create ~n:9 ~edges:(Array.of_list !edges) in

  (* 2. Excess diagonal = conductance to ground (here: node 0 is grounded
     through 10 S), right-hand side = injected currents. *)
  let d = Array.make 9 0.0 in
  d.(node 0 0) <- 10.0;
  let b = Sparse.Vec.create 9 in
  b.{node 2 2} <- -1.0;

  let problem = Sddm.Problem.of_graph ~name:"quickstart" ~graph ~d ~b in

  (* 3. Solve: Alg. 4 reordering + LT-RChol preconditioner + PCG. *)
  let result = Powerrchol.Pipeline.solve ~rtol:1e-10 problem in
  Format.printf "%a@.@." Powerrchol.Pipeline.pp_result result;

  Format.printf "node voltages (V):@.";
  for y = 0 to 2 do
    for x = 0 to 2 do
      Format.printf "  %+.4f" result.Powerrchol.Solver.x.{node x y}
    done;
    Format.printf "@."
  done;

  (* 4. Verify against the exact sparse Cholesky solver. *)
  let exact = Factor.Chol.solve problem.Sddm.Problem.a problem.Sddm.Problem.b in
  Format.printf "@.max deviation from direct solve: %.2e@."
    (Sparse.Vec.max_abs_diff result.Powerrchol.Solver.x exact)
