(* IR-drop sign-off on a synthetic two-layer power grid — the workload the
   paper's introduction motivates.

   We generate a 150x150 grid (~24k nodes), solve it with PowerRChol,
   print the sign-off report, and then show the PowerRush-style
   small-resistor merging preprocessing shrinking the problem while
   keeping the answer.

   Run with:  dune exec examples/ir_drop_analysis.exe *)

let () =
  let spec = Powergrid.Generate.default ~nx:150 ~ny:150 ~seed:2024 in
  let problem = Powergrid.Generate.generate spec in
  Format.printf "grid: %s@." (Sddm.Problem.describe problem);

  (* --- full solve --- *)
  let result = Powerrchol.Pipeline.solve problem in
  Format.printf "@.%a@.@." Powerrchol.Pipeline.pp_result result;

  (* the drop formulation's solution vector is the IR drop per node *)
  let report =
    Powergrid.Ir_drop.analyze ~budget:0.05 ~top:5 result.Powerrchol.Solver.x
  in
  Format.printf "%a@." Powergrid.Ir_drop.pp report;

  (* --- merged solve (PowerRush preprocessing) --- *)
  let merged = Powergrid.Merge.merge problem in
  let mp = merged.Powergrid.Merge.problem in
  Format.printf
    "@.after merging %d via/strap resistors: %d -> %d unknowns@."
    merged.Powergrid.Merge.n_merged_edges (Sddm.Problem.n problem)
    (Sddm.Problem.n mp);
  let merged_result = Powerrchol.Pipeline.solve mp in
  Format.printf "%a@.@." Powerrchol.Pipeline.pp_result merged_result;
  let expanded = Powergrid.Merge.expand merged merged_result.Powerrchol.Solver.x in
  Format.printf "max drop, full grid   : %.4f V@."
    (Sparse.Vec.norm_inf result.Powerrchol.Solver.x);
  Format.printf "max drop, merged grid : %.4f V@."
    (Sparse.Vec.norm_inf expanded);
  Format.printf "worst-case discrepancy: %.5f V@."
    (Sparse.Vec.max_abs_diff result.Powerrchol.Solver.x expanded)
