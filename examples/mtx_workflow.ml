(* MatrixMarket workflow: exchange problems with other tools via .mtx
   files — the format the SuiteSparse collection (the paper's Table 4
   source) distributes.

   We export a generated SDDM system (symmetric .mtx + rhs vector), read
   it back as an external tool would, and solve. To run against a real
   SuiteSparse matrix instead, download its .mtx and use
   `pgsolve solve --mtx path/to/matrix.mtx`.

   Run with:  dune exec examples/mtx_workflow.exe *)

let () =
  let case = Powergrid.Suite.find ~scale:0.2 "ecology2" in
  let problem = case.Powergrid.Suite.build () in
  let dir = Filename.temp_file "powerrchol_mtx" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let matrix_path = Filename.concat dir "problem.mtx" in
  let rhs_path = Filename.concat dir "problem_b.mtx" in

  (* export *)
  Sparse.Matrix_market.write ~symmetric:true matrix_path problem.Sddm.Problem.a;
  Sparse.Matrix_market.write_vector rhs_path problem.Sddm.Problem.b;
  Format.printf "exported %s (%d x %d, %d nnz) and %s@." matrix_path
    (fst (Sparse.Csc.dims problem.Sddm.Problem.a))
    (snd (Sparse.Csc.dims problem.Sddm.Problem.a))
    (Sparse.Csc.nnz problem.Sddm.Problem.a)
    rhs_path;

  (* import as a third party would *)
  let a = Sparse.Matrix_market.read matrix_path in
  let b = Sparse.Matrix_market.read_vector rhs_path in
  Sys.remove matrix_path;
  Sys.remove rhs_path;
  Sys.rmdir dir;

  let result = Powerrchol.Pipeline.solve_matrix ~name:"from-mtx" ~a ~b () in
  Format.printf "@.%a@.@." Powerrchol.Pipeline.pp_result result;

  (* confirm the round trip changed nothing *)
  let original = Powerrchol.Pipeline.solve problem in
  Format.printf "round-trip solution deviation: %.2e@."
    (Sparse.Vec.max_abs_diff result.Powerrchol.Solver.x
       original.Powerrchol.Solver.x)
