(* Compare every solver in the library on one power grid, then sweep the
   PCG tolerance Fig. 2-style with a reused preconditioner.

   Run with:  dune exec examples/solver_comparison.exe *)

let () =
  let case = Powergrid.Suite.find ~scale:0.5 "thupg1" in
  let problem = case.Powergrid.Suite.build () in
  Format.printf "case %s (analog of %s): %s@.@." case.Powergrid.Suite.id
    case.Powergrid.Suite.analog_of
    (Sddm.Problem.describe problem);

  let solvers =
    [
      Powerrchol.Solver.powerrchol ();
      Powerrchol.Solver.rchol ();
      Powerrchol.Solver.lt_rchol ();
      Powerrchol.Solver.fegrass ();
      Powerrchol.Solver.fegrass_ichol ();
      Powerrchol.Solver.amg_pcg ();
      Powerrchol.Solver.direct ();
    ]
  in
  Format.printf "%-15s %8s %8s %8s %8s %5s@." "solver" "Tr" "Tf" "Ti" "Ttot"
    "Ni";
  List.iter
    (fun solver ->
      let r = Powerrchol.Solver.run solver problem in
      Format.printf "%-15s %8.3f %8.3f %8.3f %8.3f %5d%s@."
        r.Powerrchol.Solver.solver r.Powerrchol.Solver.t_reorder
        r.Powerrchol.Solver.t_precond r.Powerrchol.Solver.t_iterate
        r.Powerrchol.Solver.t_total r.Powerrchol.Solver.iterations
        (if r.Powerrchol.Solver.converged then "" else " (no conv)"))
    solvers;

  (* tolerance sweep: the preconditioner is built once and reused *)
  Format.printf "@.tolerance sweep (PowerRChol, preconditioner reused):@.";
  let solver = Powerrchol.Solver.powerrchol () in
  let prepared = solver.Powerrchol.Solver.prepare problem in
  List.iter
    (fun tol ->
      let r = Powerrchol.Solver.iterate ~rtol:tol solver prepared problem in
      Format.printf "  rtol %.0e: %3d iterations, %.3f s iterate, true \
                     residual %.2e@."
        tol r.Powerrchol.Solver.iterations r.Powerrchol.Solver.t_iterate
        r.Powerrchol.Solver.residual)
    [ 1e-3; 1e-6; 1e-9; 1e-12 ]
